//! Bounded lock-free single-producer single-consumer ring buffer.
//!
//! The parallel solver wires a full `T x T` matrix of these channels so
//! every (sender, receiver) shard pair has exactly one producer and one
//! consumer — the only shape under which this ring is sound. Payloads
//! are `Copy`, so slots never need dropping and a popped value is a
//! plain bitwise read.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Bounded SPSC ring over `Copy` payloads.
///
/// `head` is owned by the consumer, `tail` by the producer; both are
/// free-running counters (wrapping subtraction gives the fill level),
/// masked into the power-of-two buffer on access.
#[derive(Debug)]
pub(crate) struct Spsc<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Next slot to read; written only by the consumer.
    head: AtomicUsize,
    /// Next slot to write; written only by the producer.
    tail: AtomicUsize,
}

// SAFETY: the ring hands each slot to at most one thread at a time —
// the producer writes a slot strictly before publishing it via the
// `tail` release store, and the consumer reads it strictly after the
// matching acquire load — so sharing the ring between one producer and
// one consumer thread is sound for any `T: Send`.
unsafe impl<T: Send> Sync for Spsc<T> {}
unsafe impl<T: Send> Send for Spsc<T> {}

impl<T: Copy> Spsc<T> {
    /// Ring with capacity `cap` (must be a power of two).
    pub fn new(cap: usize) -> Self {
        assert!(cap.is_power_of_two());
        let buf: Box<[UnsafeCell<MaybeUninit<T>>]> = (0..cap)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect();
        Spsc {
            buf,
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
        }
    }

    /// Producer side: enqueues `v`, or returns `false` when full.
    #[inline]
    pub fn try_push(&self, v: T) -> bool {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) == self.buf.len() {
            return false;
        }
        // SAFETY: only the producer writes slots, and `tail` has not
        // been published yet, so the consumer cannot be reading it.
        unsafe {
            (*self.buf[tail & (self.buf.len() - 1)].get()).write(v);
        }
        self.tail.store(tail.wrapping_add(1), Ordering::Release);
        true
    }

    /// Consumer side: dequeues the oldest value, if any.
    #[inline]
    pub fn try_pop(&self) -> Option<T> {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        // SAFETY: `head < tail` under the acquire load, so the producer
        // initialized this slot before its release store to `tail`, and
        // it will not overwrite it until `head` advances past it.
        let v = unsafe { (*self.buf[head & (self.buf.len() - 1)].get()).assume_init() };
        self.head.store(head.wrapping_add(1), Ordering::Release);
        Some(v)
    }

    /// Whether the ring currently holds no values (consumer-side view).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.head.load(Ordering::Relaxed) == self.tail.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_and_drains_in_order() {
        let q: Spsc<u64> = Spsc::new(4);
        assert!(q.is_empty());
        assert!(q.try_pop().is_none());
        for i in 0..4 {
            assert!(q.try_push(i));
        }
        assert!(!q.try_push(99), "ring must report full at capacity");
        for i in 0..4 {
            assert_eq!(q.try_pop(), Some(i));
        }
        assert!(q.is_empty());
        // Wrap around several times.
        for round in 0..10u64 {
            assert!(q.try_push(round));
            assert_eq!(q.try_pop(), Some(round));
        }
    }

    /// Mirrors the driver's batched-block protocol over this ring:
    /// fixed-capacity blocks, `sent` counted *before* the push and
    /// `received` *after* the whole block is processed, partial blocks
    /// flushed on frontier exhaustion. 10 000 seeded interleavings of
    /// produce / flush / drain steps over a tiny (4-block) ring check
    /// that no block is ever lost or drained twice, delivery stays in
    /// order, and the quiescence predicate (`sent == received` ∧ ring
    /// empty ∧ nothing buffered) never holds while a message is still
    /// in flight.
    #[test]
    fn seeded_block_interleavings_preserve_protocol() {
        #[derive(Clone, Copy)]
        struct Block {
            len: u32,
            msgs: [u64; 4],
        }
        const EMPTY: Block = Block {
            len: 0,
            msgs: [0; 4],
        };
        const BCAP: usize = 4;
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for iter in 0..10_000u64 {
            let q: Spsc<Block> = Spsc::new(4);
            let total = 1 + rng() % 48;
            let mut produced = 0u64;
            let mut out = EMPTY;
            // A block whose send was already counted but whose push has
            // not landed yet (the driver spins here; the schedule may
            // interleave arbitrary consumer steps instead).
            let mut pending: Option<Block> = None;
            let (mut sent, mut received) = (0u64, 0u64);
            let mut got: Vec<u64> = Vec::new();
            loop {
                if sent == received && q.is_empty() && pending.is_none() && out.len == 0 {
                    assert_eq!(
                        got.len() as u64,
                        produced,
                        "iter {iter}: counters quiesced with messages in flight"
                    );
                    if produced == total {
                        break;
                    }
                }
                match rng() % 4 {
                    // Producer: one message into the out-buffer (the
                    // driver never fills past an unflushed block).
                    0 | 1 => {
                        if produced < total && pending.is_none() {
                            out.msgs[out.len as usize] = (iter << 16) | produced;
                            out.len += 1;
                            produced += 1;
                            if out.len as usize == BCAP {
                                sent += 1;
                                pending = Some(std::mem::replace(&mut out, EMPTY));
                            }
                        }
                    }
                    // Flush: seal a partial block and/or retry the push.
                    2 => {
                        if pending.is_none() && out.len > 0 {
                            sent += 1;
                            pending = Some(std::mem::replace(&mut out, EMPTY));
                        }
                        if let Some(b) = pending {
                            if q.try_push(b) {
                                pending = None;
                            }
                        }
                    }
                    // Consumer: drain one block, counting it only after
                    // every message in it has been processed.
                    _ => {
                        if let Some(b) = q.try_pop() {
                            got.extend_from_slice(&b.msgs[..b.len as usize]);
                            received += 1;
                        }
                    }
                }
            }
            assert_eq!(sent, received, "iter {iter}: block counters disagree");
            assert_eq!(
                got.len() as u64,
                total,
                "iter {iter}: lost or duplicated messages"
            );
            for (i, v) in got.iter().enumerate() {
                assert_eq!(
                    *v,
                    (iter << 16) | i as u64,
                    "iter {iter}: out-of-order or corrupted delivery"
                );
            }
        }
    }

    #[test]
    fn cross_thread_transfer_preserves_order() {
        let q: Spsc<u64> = Spsc::new(8);
        const N: u64 = 100_000;
        std::thread::scope(|s| {
            s.spawn(|| {
                for i in 0..N {
                    while !q.try_push(i) {
                        std::hint::spin_loop();
                    }
                }
            });
            s.spawn(|| {
                let mut expect = 0;
                while expect < N {
                    if let Some(v) = q.try_pop() {
                        assert_eq!(v, expect);
                        expect += 1;
                    } else {
                        std::hint::spin_loop();
                    }
                }
            });
        });
        assert!(q.is_empty());
    }
}
