//! Bounded lock-free single-producer single-consumer ring buffer.
//!
//! The parallel solver wires a full `T x T` matrix of these channels so
//! every (sender, receiver) shard pair has exactly one producer and one
//! consumer — the only shape under which this ring is sound. Payloads
//! are `Copy`, so slots never need dropping and a popped value is a
//! plain bitwise read.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Bounded SPSC ring over `Copy` payloads.
///
/// `head` is owned by the consumer, `tail` by the producer; both are
/// free-running counters (wrapping subtraction gives the fill level),
/// masked into the power-of-two buffer on access.
#[derive(Debug)]
pub(crate) struct Spsc<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Next slot to read; written only by the consumer.
    head: AtomicUsize,
    /// Next slot to write; written only by the producer.
    tail: AtomicUsize,
}

// SAFETY: the ring hands each slot to at most one thread at a time —
// the producer writes a slot strictly before publishing it via the
// `tail` release store, and the consumer reads it strictly after the
// matching acquire load — so sharing the ring between one producer and
// one consumer thread is sound for any `T: Send`.
unsafe impl<T: Send> Sync for Spsc<T> {}
unsafe impl<T: Send> Send for Spsc<T> {}

impl<T: Copy> Spsc<T> {
    /// Ring with capacity `cap` (must be a power of two).
    pub fn new(cap: usize) -> Self {
        assert!(cap.is_power_of_two());
        let buf: Box<[UnsafeCell<MaybeUninit<T>>]> = (0..cap)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect();
        Spsc {
            buf,
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
        }
    }

    /// Producer side: enqueues `v`, or returns `false` when full.
    #[inline]
    pub fn try_push(&self, v: T) -> bool {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) == self.buf.len() {
            return false;
        }
        // SAFETY: only the producer writes slots, and `tail` has not
        // been published yet, so the consumer cannot be reading it.
        unsafe {
            (*self.buf[tail & (self.buf.len() - 1)].get()).write(v);
        }
        self.tail.store(tail.wrapping_add(1), Ordering::Release);
        true
    }

    /// Consumer side: dequeues the oldest value, if any.
    #[inline]
    pub fn try_pop(&self) -> Option<T> {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        // SAFETY: `head < tail` under the acquire load, so the producer
        // initialized this slot before its release store to `tail`, and
        // it will not overwrite it until `head` advances past it.
        let v = unsafe { (*self.buf[head & (self.buf.len() - 1)].get()).assume_init() };
        self.head.store(head.wrapping_add(1), Ordering::Release);
        Some(v)
    }

    /// Whether the ring currently holds no values (consumer-side view).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.head.load(Ordering::Relaxed) == self.tail.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_and_drains_in_order() {
        let q: Spsc<u64> = Spsc::new(4);
        assert!(q.is_empty());
        assert!(q.try_pop().is_none());
        for i in 0..4 {
            assert!(q.try_push(i));
        }
        assert!(!q.try_push(99), "ring must report full at capacity");
        for i in 0..4 {
            assert_eq!(q.try_pop(), Some(i));
        }
        assert!(q.is_empty());
        // Wrap around several times.
        for round in 0..10u64 {
            assert!(q.try_push(round));
            assert_eq!(q.try_pop(), Some(round));
        }
    }

    #[test]
    fn cross_thread_transfer_preserves_order() {
        let q: Spsc<u64> = Spsc::new(8);
        const N: u64 = 100_000;
        std::thread::scope(|s| {
            s.spawn(|| {
                for i in 0..N {
                    while !q.try_push(i) {
                        std::hint::spin_loop();
                    }
                }
            });
            s.spawn(|| {
                let mut expect = 0;
                while expect < N {
                    if let Some(v) = q.try_pop() {
                        assert_eq!(v, expect);
                        expect += 1;
                    } else {
                        std::hint::spin_loop();
                    }
                }
            });
        });
        assert!(q.is_empty());
    }
}
