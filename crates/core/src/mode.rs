//! The shared game-mode parser: one canonical representation of
//! "which pebble game is being played", used identically by the `rbp`
//! CLI flags, the portfolio configuration, and the serve request
//! decoder.
//!
//! Before this module each entry point parsed its variant knobs
//! separately, which made it easy for a mode string to be cache-keyed
//! one way and echoed another. [`GameMode`] owns the flag semantics
//! (`--levels` / `--green-cap` / `--green-cost`), the canonical token
//! ([`GameMode::token`], also the [`std::fmt::Display`] form and the
//! [`std::str::FromStr`] input), and the shared validation rules, so
//! every layer agrees on both the parse and the spelling.

use std::str::FromStr;

/// Default shared green-tier capacity when `--levels 3` is requested
/// without an explicit `--green-cap`.
pub const DEFAULT_GREEN_CAP: usize = 2;
/// Default green I/O cost when `--levels 3` is requested without an
/// explicit `--green-cost`.
pub const DEFAULT_GREEN_COST: u64 = 1;

/// Which pebble game a solve or schedule request is playing.
///
/// The canonical token round-trips through [`GameMode::token`] and
/// [`FromStr`]:
///
/// ```
/// use rbp_core::GameMode;
///
/// let m: GameMode = "hier:cap=4:cost=2".parse().unwrap();
/// assert_eq!(m, GameMode::Hier { green_cap: 4, green_cost: 2 });
/// assert_eq!(m.token(), "hier:cap=4:cost=2");
/// assert_eq!("mpp".parse::<GameMode>().unwrap(), GameMode::Vanilla);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum GameMode {
    /// The paper's two-level MPP game (per-processor red + shared blue).
    #[default]
    Vanilla,
    /// The three-level red/green/blue game of `rbp-hier`: a shared
    /// mid-tier of capacity `green_cap` whose I/O rule costs
    /// `green_cost` (blue I/O keeps costing the instance's `g`).
    Hier {
        /// Capacity of the shared green tier (`0` degenerates to
        /// [`GameMode::Vanilla`] with byte-identical costs).
        green_cap: usize,
        /// Cost of one green I/O rule application.
        green_cost: u64,
    },
}

impl GameMode {
    /// Number of memory levels: 2 for vanilla MPP, 3 for the hierarchy.
    #[must_use]
    pub fn levels(self) -> usize {
        match self {
            GameMode::Vanilla => 2,
            GameMode::Hier { .. } => 3,
        }
    }

    /// Whether this is the three-level mode.
    #[must_use]
    pub fn is_hier(self) -> bool {
        matches!(self, GameMode::Hier { .. })
    }

    /// The canonical lowercase token: `"mpp"`, or
    /// `"hier:cap=<green_cap>:cost=<green_cost>"`. This exact string is
    /// what cache keys embed and what responses echo, at every entry
    /// point.
    #[must_use]
    pub fn token(self) -> String {
        match self {
            GameMode::Vanilla => "mpp".to_string(),
            GameMode::Hier {
                green_cap,
                green_cost,
            } => format!("hier:cap={green_cap}:cost={green_cost}"),
        }
    }

    /// Builds a mode from the shared flag triple. This is the single
    /// validation point for `--levels` / `--green-cap` / `--green-cost`
    /// (CLI) and `levels` / `green_cap` / `green_cost` (serve JSON):
    ///
    /// - `levels` absent or `2` selects [`GameMode::Vanilla`]; green
    ///   parameters are then rejected rather than silently ignored;
    /// - `levels = 3` selects [`GameMode::Hier`], defaulting absent
    ///   green parameters to [`DEFAULT_GREEN_CAP`] /
    ///   [`DEFAULT_GREEN_COST`];
    /// - any other level count is an error.
    pub fn from_flags(
        levels: Option<u64>,
        green_cap: Option<u64>,
        green_cost: Option<u64>,
    ) -> Result<GameMode, String> {
        match levels {
            None | Some(2) => {
                if green_cap.is_some() || green_cost.is_some() {
                    Err("green-cap/green-cost require levels=3".to_string())
                } else {
                    Ok(GameMode::Vanilla)
                }
            }
            Some(3) => {
                let green_cap = match green_cap {
                    None => DEFAULT_GREEN_CAP,
                    Some(c) => usize::try_from(c).map_err(|_| "green-cap too large".to_string())?,
                };
                if green_cap > 64 {
                    return Err(format!("green-cap {green_cap} exceeds the maximum of 64"));
                }
                let green_cost = green_cost.unwrap_or(DEFAULT_GREEN_COST);
                Ok(GameMode::Hier {
                    green_cap,
                    green_cost,
                })
            }
            Some(l) => Err(format!("unsupported levels={l} (expected 2 or 3)")),
        }
    }
}

impl std::fmt::Display for GameMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.token())
    }
}

impl FromStr for GameMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s == "mpp" || s == "vanilla" {
            return Ok(GameMode::Vanilla);
        }
        let rest = s.strip_prefix("hier:cap=").ok_or_else(|| {
            format!("unknown game mode '{s}' (expected mpp or hier:cap=N:cost=M)")
        })?;
        let (cap, cost) = rest
            .split_once(":cost=")
            .ok_or_else(|| format!("malformed hier mode '{s}' (expected hier:cap=N:cost=M)"))?;
        let green_cap: usize = cap
            .parse()
            .map_err(|_| format!("bad green cap '{cap}' in mode '{s}'"))?;
        let green_cost: u64 = cost
            .parse()
            .map_err(|_| format!("bad green cost '{cost}' in mode '{s}'"))?;
        if green_cap > 64 {
            return Err(format!("green-cap {green_cap} exceeds the maximum of 64"));
        }
        Ok(GameMode::Hier {
            green_cap,
            green_cost,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_roundtrips() {
        for mode in [
            GameMode::Vanilla,
            GameMode::Hier {
                green_cap: 0,
                green_cost: 0,
            },
            GameMode::Hier {
                green_cap: 7,
                green_cost: 3,
            },
        ] {
            let token = mode.token();
            assert_eq!(token.parse::<GameMode>().unwrap(), mode, "{token}");
            assert_eq!(mode.to_string(), token);
        }
    }

    #[test]
    fn from_flags_defaults_and_validation() {
        assert_eq!(
            GameMode::from_flags(None, None, None).unwrap(),
            GameMode::Vanilla
        );
        assert_eq!(
            GameMode::from_flags(Some(2), None, None).unwrap(),
            GameMode::Vanilla
        );
        assert_eq!(
            GameMode::from_flags(Some(3), None, None).unwrap(),
            GameMode::Hier {
                green_cap: DEFAULT_GREEN_CAP,
                green_cost: DEFAULT_GREEN_COST
            }
        );
        assert_eq!(
            GameMode::from_flags(Some(3), Some(5), Some(2)).unwrap(),
            GameMode::Hier {
                green_cap: 5,
                green_cost: 2
            }
        );
        // Green knobs without levels=3 are an error, not a silent no-op.
        assert!(GameMode::from_flags(None, Some(4), None).is_err());
        assert!(GameMode::from_flags(Some(2), None, Some(1)).is_err());
        assert!(GameMode::from_flags(Some(4), None, None).is_err());
        assert!(GameMode::from_flags(Some(3), Some(65), None).is_err());
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "",
            "hier",
            "hier:cap=",
            "hier:cap=3",
            "hier:cap=x:cost=1",
            "hier:cap=1:cost=",
            "hier:cap=65:cost=1",
            "spp",
        ] {
            assert!(bad.parse::<GameMode>().is_err(), "{bad}");
        }
    }

    #[test]
    fn levels_and_is_hier() {
        assert_eq!(GameMode::Vanilla.levels(), 2);
        assert!(!GameMode::Vanilla.is_hier());
        let h = GameMode::Hier {
            green_cap: 1,
            green_cost: 1,
        };
        assert_eq!(h.levels(), 3);
        assert!(h.is_hier());
    }
}
