//! # rbp-core — the red-blue pebble games
//!
//! Executable model of the paper *Red-Blue Pebbling with Multiple
//! Processors: Time, Communication and Memory Trade-offs* (SPAA 2024):
//!
//! - [`spp`]: the classical single-processor red-blue pebble game of
//!   Hong & Kung, with the §3.1 variants (base, one-shot, no-deletion,
//!   computation costs), a rule-enforcing strategy validator, an exact
//!   optimal solver, and the Theorem 2 zero-I/O decision procedure;
//! - [`mpp`]: the paper's multiprocessor game (§3.2) — shaded red
//!   pebbles, batched parallel rules over shaded selections, the
//!   `g`-weighted cost function, a validator, a step-simulation engine
//!   for schedulers, run statistics (communication vs. spill I/O, work
//!   balance, recomputation), and an exact solver for small instances;
//! - [`translate`]: the Lemma 5 simulation compiling MPP strategies to
//!   single-processor strategies with fast memory `k·r`;
//! - [`cost`]: the shared cost model and surplus cost (Definition 1).
//!
//! ```
//! use rbp_core::{MppInstance, MppSimulator};
//! use rbp_dag::{dag_from_edges, NodeId};
//!
//! // Proc 0 computes v0 and hands it to proc 1 through shared memory.
//! let dag = dag_from_edges(2, &[(0, 1)]);
//! let inst = MppInstance::new(&dag, 2, 2, 3); // k=2, r=2, g=3
//! let mut sim = MppSimulator::new(inst);
//! sim.compute(vec![(0, NodeId(0))]).unwrap();
//! sim.store(vec![(0, NodeId(0))]).unwrap();
//! sim.load(vec![(1, NodeId(0))]).unwrap();
//! sim.compute(vec![(1, NodeId(1))]).unwrap();
//! let run = sim.finish().unwrap();
//! assert_eq!(run.cost.total(inst.model), 2 * 3 + 2);
//! ```

#![deny(missing_docs)]

mod arena;
pub mod cost;
mod driver;
pub mod mode;
pub mod mpp;
mod partition;
#[doc(hidden)]
pub mod ringbench;
pub mod search;
pub mod spp;
mod spsc;
pub mod translate;

/// The exact-solver engine behind the MPP and SPP solvers, exposed so
/// downstream crates can plug new game variants into the same
/// sequential and hash-sharded parallel A\* drivers.
///
/// A variant describes its state space through [`engine::Domain`]
/// (bit-packed canonical keys, goal test, admissible heuristic,
/// successor enumeration) and calls [`engine::search`]; the driver owns
/// the frontier, the packed interning arenas, global solve limits, and
/// the HDA\*-style cross-shard protocol. `rbp-hier`'s three-level
/// solver is the first external client.
pub mod engine {
    pub use crate::arena::{pack_fields, unpack_fields, words_for, MAX_KEY_WORDS};
    pub use crate::driver::{search, Domain, DriverOutcome, EmitFn, HeurThunk};
    pub use crate::partition::Partition;
    pub use crate::search::{PackedMove, PhaseProf, PhaseStats};
}

pub use cost::{Cost, CostModel};
pub use mode::GameMode;
pub use mpp::{
    async_makespan, batchify, solve_mpp, solve_mpp_with, validate_mpp, AsyncTiming, Configuration,
    IoClass, MppError, MppErrorKind, MppInstance, MppMove, MppRun, MppRunStats, MppSimulator,
    MppSolution, MppStrategy, Pebble, ProcId,
};
pub use partition::PartitionMode;
pub use search::{
    phase_timing_enabled, trace_shards, AdmissibleHeuristic, HeurCtx, PhaseProf, PhaseStats,
    SearchConfig, SearchOutcome, SearchStats, ShardStats, SolveLimits, StopReason, MAX_THREADS,
};
pub use spp::{
    solve_spp, solve_spp_with, zero_io_order, zero_io_pebbling_exists, SppError, SppInstance,
    SppMove, SppSolution, SppState, SppStrategy, SppVariant,
};
pub use translate::{mpp_to_spp, simulation_instance};

// Re-export the substrate so downstream crates can use one import root.
pub use rbp_dag;
