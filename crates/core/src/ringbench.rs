//! Benchmark hooks for the cross-shard send path (internal).
//!
//! `rbp-bench` times the two message-transport shapes the parallel
//! solver has used — one ring slot per state vs. [`BLOCK_CAP`]-state
//! blocks — without reaching into the private driver internals. The
//! payload mirrors the driver's `Msg` exactly (packed key words +
//! relaxation fields), so the measured per-state hand-off cost is the
//! real one. Producer and consumer run *interleaved on the calling
//! thread* (push until full, drain until empty): a two-thread transfer
//! on a time-sliced single-core host measures the OS scheduler, not
//! the transport, while the interleaved walk isolates exactly what
//! batching changes — ring atomics and slot copies per message — and
//! is deterministic across hosts. Hidden from docs: this is not part
//! of the public API and may change with the driver.

use crate::spsc::Spsc;

/// Messages per block, kept in sync with the driver's batching factor.
pub const BLOCK_CAP: usize = 8;

/// Same shape as the driver's cross-shard message.
#[derive(Clone, Copy)]
pub struct BenchMsg {
    /// Packed key words.
    pub words: [u64; 5],
    /// Tentative distance.
    pub dist: u64,
    /// Parent global id.
    pub parent: u64,
    /// Packed move.
    pub mv: u32,
}

/// A block of [`BenchMsg`]s, same shape as the driver's ring slot.
#[derive(Clone, Copy)]
pub struct BenchBlock {
    /// Valid prefix length of `msgs`.
    pub len: u32,
    /// The batched messages.
    pub msgs: [BenchMsg; BLOCK_CAP],
}

fn msg(i: u64) -> BenchMsg {
    BenchMsg {
        words: [i, i ^ 0xdead_beef, i.rotate_left(17), !i, i.wrapping_mul(3)],
        dist: i & 0xffff,
        parent: i,
        mv: i as u32,
    }
}

fn fold(sum: u64, m: &BenchMsg) -> u64 {
    sum.wrapping_add(m.dist).wrapping_add(m.words[0])
}

/// Transfers `count` messages through a ring one slot per state (the
/// pre-batching send path), producer and consumer interleaved on the
/// calling thread, and returns a checksum of the received payloads.
#[must_use]
pub fn transfer_per_state(count: u64) -> u64 {
    let ring: Spsc<BenchMsg> = Spsc::new(1 << 10);
    let mut sum = 0u64;
    let (mut sent, mut got) = (0u64, 0u64);
    while got < count {
        while sent < count && ring.try_push(msg(sent)) {
            sent += 1;
        }
        while let Some(m) = ring.try_pop() {
            sum = fold(sum, &m);
            got += 1;
        }
    }
    sum
}

/// Transfers the same `count` messages packed into [`BLOCK_CAP`]-state
/// blocks (the driver's batched send path) and returns the same
/// checksum as [`transfer_per_state`].
#[must_use]
pub fn transfer_batched(count: u64) -> u64 {
    let ring: Spsc<BenchBlock> = Spsc::new(1 << 7);
    let mut sum = 0u64;
    let (mut sent, mut got) = (0u64, 0u64);
    let mut blk = BenchBlock {
        len: 0,
        msgs: [msg(0); BLOCK_CAP],
    };
    while got < count {
        while sent < count {
            blk.msgs[blk.len as usize] = msg(sent);
            blk.len += 1;
            sent += 1;
            if blk.len as usize == BLOCK_CAP || sent == count {
                if ring.try_push(blk) {
                    blk.len = 0;
                } else {
                    // Ring full: roll back the seal and let the drain
                    // below make room before continuing.
                    blk.len -= 1;
                    sent -= 1;
                    break;
                }
            }
        }
        while let Some(b) = ring.try_pop() {
            for m in &b.msgs[..b.len as usize] {
                sum = fold(sum, m);
            }
            got += u64::from(b.len);
        }
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_paths_deliver_identical_payloads() {
        for count in [1u64, 7, 8, 9, 1000, 100_000] {
            assert_eq!(
                transfer_per_state(count),
                transfer_batched(count),
                "count={count}"
            );
        }
    }
}
