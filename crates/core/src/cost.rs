//! Cost models and cost accounting for pebbling strategies.
//!
//! The paper assigns cost `g` to every I/O rule application (R1/R2),
//! cost 1 to every compute rule application (R3), and cost 0 to deletions
//! (R4). Classical SPP instead counts only I/O; "SPP with computation
//! costs" charges a small ε per compute. All three are instances of
//! [`CostModel`].

/// Per-rule costs of a pebbling game.
///
/// `g` is the cost of one I/O step (a whole R1-M/R2-M application,
/// regardless of how many pebbles it moves); `compute` is the cost of one
/// compute step (R3). Deletions are always free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CostModel {
    /// Cost of one I/O rule application.
    pub g: u64,
    /// Cost of one compute rule application.
    pub compute: u64,
}

impl CostModel {
    /// The MPP cost function of the paper: I/O costs `g`, compute costs 1.
    #[must_use]
    pub fn mpp(g: u64) -> Self {
        CostModel { g, compute: 1 }
    }

    /// Classical SPP: only I/O counts, computation is free.
    #[must_use]
    pub fn spp_io_only(g: u64) -> Self {
        CostModel { g, compute: 0 }
    }

    /// SPP with computation costs (the APX-hardness setting of Lemma 11).
    #[must_use]
    pub fn spp_with_compute(g: u64, compute: u64) -> Self {
        CostModel { g, compute }
    }
}

impl Default for CostModel {
    /// MPP with `g = 1`.
    fn default() -> Self {
        CostModel::mpp(1)
    }
}

/// Tally of rule applications of a pebbling strategy, kept separately so
/// experiments can report I/O and compute contributions individually.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Cost {
    /// Number of R1 applications (fast → slow memory; "stores").
    pub stores: u64,
    /// Number of R2 applications (slow → fast memory; "loads").
    pub loads: u64,
    /// Number of R3 applications ("computes").
    pub computes: u64,
}

impl Cost {
    /// Zero cost.
    #[must_use]
    pub fn zero() -> Self {
        Cost::default()
    }

    /// Number of I/O rule applications (stores + loads).
    #[must_use]
    pub fn io_steps(&self) -> u64 {
        self.stores + self.loads
    }

    /// Total cost under `model`: `g·(stores + loads) + compute·computes`.
    #[must_use]
    pub fn total(&self, model: CostModel) -> u64 {
        model.g * self.io_steps() + model.compute * self.computes
    }

    /// Surplus cost (Definition 1): `total − ceil(n / k)`.
    ///
    /// `n / k` (rounded up to the next integer, since step counts are
    /// integral) is the unavoidable compute cost of an `n`-node DAG on `k`
    /// processors; the surplus isolates I/O, imbalance, and recomputation.
    #[must_use]
    pub fn surplus(&self, model: CostModel, n: usize, k: usize) -> u64 {
        let unavoidable = (n as u64).div_ceil(k as u64) * model.compute;
        self.total(model).saturating_sub(unavoidable)
    }

    /// Adds another tally.
    pub fn add(&mut self, other: Cost) {
        self.stores += other.stores;
        self.loads += other.loads;
        self.computes += other.computes;
    }
}

impl std::ops::Add for Cost {
    type Output = Cost;
    fn add(self, rhs: Cost) -> Cost {
        Cost {
            stores: self.stores + rhs.stores,
            loads: self.loads + rhs.loads,
            computes: self.computes + rhs.computes,
        }
    }
}

impl std::fmt::Display for Cost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "stores={} loads={} computes={}",
            self.stores, self.loads, self.computes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn models() {
        assert_eq!(CostModel::mpp(3), CostModel { g: 3, compute: 1 });
        assert_eq!(CostModel::spp_io_only(5), CostModel { g: 5, compute: 0 });
        assert_eq!(
            CostModel::spp_with_compute(5, 2),
            CostModel { g: 5, compute: 2 }
        );
        assert_eq!(CostModel::default(), CostModel::mpp(1));
    }

    #[test]
    fn totals() {
        let c = Cost {
            stores: 2,
            loads: 3,
            computes: 10,
        };
        assert_eq!(c.io_steps(), 5);
        assert_eq!(c.total(CostModel::mpp(4)), 4 * 5 + 10);
        assert_eq!(c.total(CostModel::spp_io_only(4)), 20);
    }

    #[test]
    fn surplus_subtracts_unavoidable_work() {
        let c = Cost {
            stores: 1,
            loads: 1,
            computes: 6,
        };
        // n=10 on k=2: unavoidable = ceil(10/2) = 5 computes.
        assert_eq!(c.surplus(CostModel::mpp(2), 10, 2), 2 * 2 + 6 - 5);
        // n=10 on k=3: ceil = 4.
        assert_eq!(c.surplus(CostModel::mpp(2), 10, 3), 2 * 2 + 6 - 4);
        // Surplus saturates at zero rather than underflowing.
        let tiny = Cost {
            stores: 0,
            loads: 0,
            computes: 1,
        };
        assert_eq!(tiny.surplus(CostModel::mpp(1), 100, 1), 0);
    }

    #[test]
    fn addition() {
        let a = Cost {
            stores: 1,
            loads: 2,
            computes: 3,
        };
        let b = Cost {
            stores: 10,
            loads: 20,
            computes: 30,
        };
        assert_eq!(
            a + b,
            Cost {
                stores: 11,
                loads: 22,
                computes: 33,
            }
        );
        let mut m = a;
        m.add(b);
        assert_eq!(m, a + b);
    }

    #[test]
    fn display_is_readable() {
        let c = Cost {
            stores: 1,
            loads: 2,
            computes: 3,
        };
        assert_eq!(c.to_string(), "stores=1 loads=2 computes=3");
    }
}
