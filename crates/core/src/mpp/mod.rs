//! Multiprocessor red-blue pebbling (MPP), the paper's model (§3.2).
//!
//! `k` processors each own `r` red pebbles of their own *shade*; all share
//! unlimited blue slow memory. A transition applies one rule to a *shaded
//! selection* — an injective assignment of up to `k` processors to
//! vertices — so a single I/O or compute step moves up to `k` pebbles for
//! one unit of cost (`g` or `1` respectively). Deletions are free.

pub mod async_cost;
pub mod config;
pub mod exact;
pub mod moves;
pub mod optimize;
pub mod sim;
pub mod stats;
pub mod strategy;

pub use async_cost::{async_makespan, AsyncTiming};
pub use optimize::batchify;

pub use config::{Configuration, MppInstance};
pub use exact::{solve as solve_mpp, solve_with as solve_mpp_with, MppSolution};
pub use moves::{MppMove, Pebble, ProcId};
pub use sim::{MppRun, MppSimulator};
pub use stats::{IoClass, MppRunStats};
pub use strategy::{validate as validate_mpp, MppError, MppErrorKind, MppStrategy};
