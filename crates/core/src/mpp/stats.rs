//! Post-hoc analysis of MPP strategies: cost decomposition, work balance,
//! recomputation, and I/O classification (communication vs. capacity).
//!
//! The paper (§3.3) notes that MPP I/O arises from two distinct causes:
//! (i) communicating data between processors, and (ii) spilling to slow
//! memory to free fast-memory space. [`MppRunStats`] separates the two by
//! matching each load with the most recent store of the same node.

use std::collections::HashMap;

use rbp_dag::NodeId;
use rbp_trace::CounterSet;

use crate::{Cost, MppInstance, MppMove, MppStrategy, ProcId};

/// Why an I/O transfer happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoClass {
    /// The value was stored by one processor and loaded by another:
    /// inter-processor communication through shared memory.
    Communication,
    /// The value was stored and later reloaded by the same processor:
    /// a capacity spill.
    Spill,
    /// The value was stored but never reloaded (e.g. an output saved to
    /// slow memory).
    StoreOnly,
}

impl IoClass {
    /// The counter name this class is tallied under in
    /// [`MppRunStats::io_transfers`] (and in emitted traces).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            IoClass::Communication => "io.communication",
            IoClass::Spill => "io.spill",
            IoClass::StoreOnly => "io.store_only",
        }
    }
}

/// Aggregated statistics of a validated MPP strategy.
#[derive(Debug, Clone, PartialEq)]
pub struct MppRunStats {
    /// Rule-application tally.
    pub cost: Cost,
    /// Total cost under the instance's model.
    pub total: u64,
    /// Surplus cost (Definition 1).
    pub surplus: u64,
    /// Compute steps (R3-M applications).
    pub compute_steps: u64,
    /// Node-computations per processor (work distribution).
    pub work_per_proc: Vec<u64>,
    /// Total node-computations (Σ work_per_proc).
    pub total_work: u64,
    /// Number of distinct nodes computed.
    pub distinct_computed: u64,
    /// `total_work − distinct_computed`: node-computations spent on
    /// recomputation.
    pub recomputations: u64,
    /// Free red-pebble removals (R4-M applications): the strategy's
    /// eviction decisions.
    pub evictions: u64,
    /// Pebbles moved per transfer, tallied under the [`IoClass::name`]
    /// counters (always present, zero when unused, fixed order).
    pub io_transfers: CounterSet,
    /// Average batch size of compute steps (parallel efficiency; `k`
    /// means perfectly full batches).
    pub avg_compute_batch: f64,
    /// Average batch size of I/O steps.
    pub avg_io_batch: f64,
}

impl MppRunStats {
    /// Analyzes a strategy. The strategy must be valid for `instance`
    /// (validate first; this function only replays move metadata).
    #[must_use]
    pub fn analyze(instance: &MppInstance, strategy: &MppStrategy) -> Self {
        let k = instance.k;
        let n = instance.dag.n();
        let mut cost = Cost::zero();
        let mut work_per_proc = vec![0u64; k];
        let mut computed = instance.dag.empty_set();
        let mut distinct = 0u64;
        let mut compute_batch_total = 0u64;
        let mut compute_steps = 0u64;
        let mut io_batch_total = 0u64;
        let mut io_steps = 0u64;
        let mut evictions = 0u64;

        // Per-node transfer matching: last store (step, proc) not yet
        // consumed by a load classification; we classify per (store,load)
        // pair and count leftover stores as StoreOnly.
        struct StoreRec {
            proc: ProcId,
            loads_by_same: u64,
            loads_by_other: u64,
        }
        let mut open_stores: HashMap<NodeId, Vec<StoreRec>> = HashMap::new();

        for mv in &strategy.moves {
            match mv {
                MppMove::Compute(batch) => {
                    cost.computes += 1;
                    compute_steps += 1;
                    compute_batch_total += batch.len() as u64;
                    for &(p, v) in batch {
                        work_per_proc[p] += 1;
                        if computed.insert(v) {
                            distinct += 1;
                        }
                    }
                }
                MppMove::Store(batch) => {
                    cost.stores += 1;
                    io_steps += 1;
                    io_batch_total += batch.len() as u64;
                    for &(p, v) in batch {
                        open_stores.entry(v).or_default().push(StoreRec {
                            proc: p,
                            loads_by_same: 0,
                            loads_by_other: 0,
                        });
                    }
                }
                MppMove::Load(batch) => {
                    cost.loads += 1;
                    io_steps += 1;
                    io_batch_total += batch.len() as u64;
                    for &(p, v) in batch {
                        if let Some(recs) = open_stores.get_mut(&v) {
                            if let Some(last) = recs.last_mut() {
                                if last.proc == p {
                                    last.loads_by_same += 1;
                                } else {
                                    last.loads_by_other += 1;
                                }
                            }
                        }
                    }
                }
                MppMove::Remove(_) => evictions += 1,
            }
        }

        // Pre-seed the three classes in a fixed order so two analyses of
        // the same strategy produce identical (comparable) counter sets
        // regardless of `open_stores` iteration order.
        let mut io_transfers = CounterSet::new();
        for class in [IoClass::Communication, IoClass::Spill, IoClass::StoreOnly] {
            io_transfers.set(class.name(), 0);
        }
        for recs in open_stores.values() {
            for rec in recs {
                // The store itself plus each matched load count as
                // transfers of the corresponding class.
                if rec.loads_by_other > 0 {
                    io_transfers.add(IoClass::Communication.name(), 1 + rec.loads_by_other);
                    io_transfers.add(IoClass::Spill.name(), rec.loads_by_same);
                } else if rec.loads_by_same > 0 {
                    io_transfers.add(IoClass::Spill.name(), 1 + rec.loads_by_same);
                } else {
                    io_transfers.add(IoClass::StoreOnly.name(), 1);
                }
            }
        }

        let total_work: u64 = work_per_proc.iter().sum();
        let total = cost.total(instance.model);
        MppRunStats {
            cost,
            total,
            surplus: cost.surplus(instance.model, n, k),
            compute_steps,
            work_per_proc,
            total_work,
            distinct_computed: distinct,
            recomputations: total_work - distinct,
            evictions,
            io_transfers,
            avg_compute_batch: ratio(compute_batch_total, compute_steps),
            avg_io_batch: ratio(io_batch_total, io_steps),
        }
    }

    /// Work imbalance: max processor work minus mean processor work.
    #[must_use]
    pub fn imbalance(&self) -> f64 {
        if self.work_per_proc.is_empty() {
            return 0.0;
        }
        let max = *self.work_per_proc.iter().max().unwrap() as f64;
        let mean = self.total_work as f64 / self.work_per_proc.len() as f64;
        max - mean
    }

    /// Transfers classified as inter-processor communication.
    #[must_use]
    pub fn communication_transfers(&self) -> u64 {
        self.io_transfers.get(IoClass::Communication.name())
    }

    /// Transfers classified as capacity spills.
    #[must_use]
    pub fn spill_transfers(&self) -> u64 {
        self.io_transfers.get(IoClass::Spill.name())
    }

    /// Transfers stored to slow memory and never reloaded.
    #[must_use]
    pub fn store_only_transfers(&self) -> u64 {
        self.io_transfers.get(IoClass::StoreOnly.name())
    }

    /// The full run as a flat [`CounterSet`] — the payload emitted to
    /// traces (see [`MppRunStats::trace`]) and reused by the experiment
    /// harness instead of ad-hoc stats copies.
    #[must_use]
    pub fn counters(&self) -> CounterSet {
        let mut c = CounterSet::new();
        c.set("total", self.total);
        c.set("surplus", self.surplus);
        c.set("steps.compute", self.compute_steps);
        c.set("steps.io", self.cost.io_steps());
        c.set("evictions", self.evictions);
        c.set("work.total", self.total_work);
        c.set("work.distinct", self.distinct_computed);
        c.set("work.recomputations", self.recomputations);
        c.merge(&self.io_transfers);
        c
    }

    /// Emits [`MppRunStats::counters`] through the global tracer under
    /// `<prefix>.` names. No-op while tracing is disabled.
    pub fn trace(&self, prefix: &str) {
        if !rbp_trace::enabled() {
            return;
        }
        self.counters().emit(&format!("{prefix}."));
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MppSimulator;
    use rbp_dag::dag_from_edges;

    fn v(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn communication_is_classified() {
        let d = dag_from_edges(2, &[(0, 1)]);
        let inst = MppInstance::new(&d, 2, 2, 3);
        let mut sim = MppSimulator::new(inst);
        sim.compute(vec![(0, v(0))]).unwrap();
        sim.store(vec![(0, v(0))]).unwrap();
        sim.load(vec![(1, v(0))]).unwrap();
        sim.compute(vec![(1, v(1))]).unwrap();
        let run = sim.finish().unwrap();
        let stats = MppRunStats::analyze(&inst, &run.strategy);
        assert_eq!(stats.communication_transfers(), 2); // store + load
        assert_eq!(stats.spill_transfers(), 0);
        assert_eq!(stats.work_per_proc, vec![1, 1]);
        assert_eq!(stats.recomputations, 0);
        assert_eq!(stats.total, 2 * 3 + 2);
        // n=2, k=2 → unavoidable 1; surplus = total - 1.
        assert_eq!(stats.surplus, stats.total - 1);
    }

    #[test]
    fn spill_is_classified() {
        // One processor, r=1: compute 0, spill it, compute 1 (indep),
        // store 1? — simpler: two independent sinks with r=1.
        let d = dag_from_edges(2, &[]);
        let inst = MppInstance::new(&d, 1, 1, 2);
        let mut sim = MppSimulator::new(inst);
        sim.compute(vec![(0, v(0))]).unwrap();
        sim.store(vec![(0, v(0))]).unwrap();
        sim.remove_red(0, v(0)).unwrap();
        sim.compute(vec![(0, v(1))]).unwrap();
        let run = sim.finish().unwrap();
        let stats = MppRunStats::analyze(&inst, &run.strategy);
        // Store never reloaded → StoreOnly.
        assert_eq!(stats.store_only_transfers(), 1);
        assert_eq!(stats.communication_transfers(), 0);
    }

    #[test]
    fn same_proc_reload_counts_as_spill() {
        let d = dag_from_edges(3, &[(0, 2), (1, 2)]);
        let inst = MppInstance::new(&d, 1, 3, 2);
        let mut sim = MppSimulator::new(inst);
        sim.compute(vec![(0, v(0))]).unwrap();
        sim.store(vec![(0, v(0))]).unwrap();
        sim.remove_red(0, v(0)).unwrap();
        sim.compute(vec![(0, v(1))]).unwrap();
        sim.load(vec![(0, v(0))]).unwrap();
        sim.compute(vec![(0, v(2))]).unwrap();
        let run = sim.finish().unwrap();
        let stats = MppRunStats::analyze(&inst, &run.strategy);
        assert_eq!(stats.spill_transfers(), 2);
        assert_eq!(stats.communication_transfers(), 0);
    }

    #[test]
    fn recomputation_counted() {
        let d = dag_from_edges(3, &[(0, 1), (0, 2)]);
        let inst = MppInstance::new(&d, 1, 2, 10);
        let mut sim = MppSimulator::new(inst);
        sim.compute(vec![(0, v(0))]).unwrap();
        sim.compute(vec![(0, v(1))]).unwrap();
        sim.store(vec![(0, v(1))]).unwrap();
        sim.remove_red(0, v(0)).unwrap();
        sim.remove_red(0, v(1)).unwrap();
        sim.compute(vec![(0, v(0))]).unwrap(); // recompute source
        sim.compute(vec![(0, v(2))]).unwrap();
        let run = sim.finish().unwrap();
        let stats = MppRunStats::analyze(&inst, &run.strategy);
        assert_eq!(stats.total_work, 4);
        assert_eq!(stats.distinct_computed, 3);
        assert_eq!(stats.recomputations, 1);
    }

    #[test]
    fn counters_flatten_the_run() {
        let d = dag_from_edges(2, &[(0, 1)]);
        let inst = MppInstance::new(&d, 2, 2, 3);
        let mut sim = MppSimulator::new(inst);
        sim.compute(vec![(0, v(0))]).unwrap();
        sim.store(vec![(0, v(0))]).unwrap();
        sim.load(vec![(1, v(0))]).unwrap();
        sim.compute(vec![(1, v(1))]).unwrap();
        let run = sim.finish().unwrap();
        let stats = MppRunStats::analyze(&inst, &run.strategy);
        let c = stats.counters();
        assert_eq!(c.get("total"), 8);
        assert_eq!(c.get("steps.compute"), 2);
        assert_eq!(c.get("steps.io"), 2);
        assert_eq!(c.get("io.communication"), 2);
        assert_eq!(c.get("evictions"), 0);
        assert_eq!(c.get("work.recomputations"), 0);
    }

    /// Migration regression: the `CounterSet`-backed statistics must
    /// reproduce the exact values the pre-migration `HashMap<IoClass,
    /// u64>` implementation produced on a fixed instance (captured on
    /// `binary_in_tree(4)`, `k=2 r=3 g=2`; the witness shape — one free
    /// recomputation from a dominance-maximal compute batch — is pinned
    /// alongside the optimum).
    #[test]
    fn migration_preserves_fixed_instance_counts() {
        use rbp_dag::generators;
        let dag = generators::binary_in_tree(4);
        let inst = MppInstance::new(&dag, 2, 3, 2);
        let sol = crate::solve_mpp(&inst, crate::SolveLimits::default()).unwrap();
        let stats = MppRunStats::analyze(&inst, &sol.strategy);
        assert_eq!(stats.total, 8);
        assert_eq!(stats.surplus, 4);
        assert_eq!(stats.compute_steps, 4);
        assert_eq!(stats.total_work, 8);
        assert_eq!(stats.distinct_computed, 7);
        assert_eq!(stats.recomputations, 1);
        assert_eq!(stats.communication_transfers(), 2);
        assert_eq!(stats.spill_transfers(), 0);
        assert_eq!(stats.store_only_transfers(), 1);
        assert_eq!(stats.avg_compute_batch, 2.0);
        assert_eq!(stats.avg_io_batch, 1.5);
        // Two analyses of the same strategy compare equal (fixed counter
        // order regardless of internal hash-map iteration).
        assert_eq!(stats, MppRunStats::analyze(&inst, &sol.strategy));
    }

    #[test]
    fn batch_averages() {
        let d = dag_from_edges(4, &[]);
        let inst = MppInstance::new(&d, 2, 2, 1);
        let mut sim = MppSimulator::new(inst);
        sim.compute(vec![(0, v(0)), (1, v(1))]).unwrap();
        sim.compute(vec![(0, v(2)), (1, v(3))]).unwrap();
        let run = sim.finish().unwrap();
        let stats = MppRunStats::analyze(&inst, &run.strategy);
        assert_eq!(stats.avg_compute_batch, 2.0);
        assert_eq!(stats.avg_io_batch, 0.0);
        assert_eq!(stats.imbalance(), 0.0);
    }
}
