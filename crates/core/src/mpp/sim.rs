//! Step-by-step simulation engine for building MPP strategies.
//!
//! Schedulers drive an [`MppSimulator`]: each call applies one rule to
//! the live configuration (rejecting illegal moves immediately, with the
//! violation) and logs it. [`MppSimulator::finish`] checks terminality
//! and returns the strategy plus its cost. This guarantees every
//! scheduler in `rbp-schedulers` emits only rule-conforming strategies —
//! the strategy can still be re-validated independently with
//! [`crate::validate_mpp`].

use rbp_dag::NodeId;

use crate::mpp::strategy::apply_checked;
use crate::{
    Configuration, Cost, MppError, MppErrorKind, MppInstance, MppMove, MppStrategy, Pebble, ProcId,
};

/// A live MPP game that accumulates a strategy.
#[derive(Debug, Clone)]
pub struct MppSimulator<'a> {
    instance: MppInstance<'a>,
    config: Configuration,
    moves: Vec<MppMove>,
    cost: Cost,
}

/// A finished, validated run.
#[derive(Debug, Clone)]
pub struct MppRun {
    /// The strategy that was executed.
    pub strategy: MppStrategy,
    /// Its rule-application tally.
    pub cost: Cost,
}

impl<'a> MppSimulator<'a> {
    /// Starts a game in the initial configuration.
    #[must_use]
    pub fn new(instance: MppInstance<'a>) -> Self {
        let config = Configuration::initial(instance.dag, instance.k);
        MppSimulator {
            instance,
            config,
            moves: Vec::new(),
            cost: Cost::zero(),
        }
    }

    /// The instance being played.
    #[must_use]
    pub fn instance(&self) -> &MppInstance<'a> {
        &self.instance
    }

    /// The current configuration (read-only).
    #[must_use]
    pub fn config(&self) -> &Configuration {
        &self.config
    }

    /// Cost so far.
    #[must_use]
    pub fn cost(&self) -> Cost {
        self.cost
    }

    /// Number of moves so far.
    #[must_use]
    pub fn steps(&self) -> usize {
        self.moves.len()
    }

    /// Applies one move, or reports the violation without changing state.
    pub fn apply(&mut self, mv: MppMove) -> Result<(), MppError> {
        // apply_checked mutates only on success for batch rules? It checks
        // all pairs before inserting for Store/Load/Compute, and removals
        // mutate atomically — so state stays clean on error.
        apply_checked(&self.instance, &mut self.config, &mv).map_err(|kind| MppError {
            step: self.moves.len(),
            kind,
        })?;
        match &mv {
            MppMove::Store(_) => self.cost.stores += 1,
            MppMove::Load(_) => self.cost.loads += 1,
            MppMove::Compute(_) => self.cost.computes += 1,
            MppMove::Remove(_) => {}
        }
        self.moves.push(mv);
        Ok(())
    }

    /// Batch compute (R3-M).
    pub fn compute(&mut self, batch: Vec<(ProcId, NodeId)>) -> Result<(), MppError> {
        self.apply(MppMove::Compute(batch))
    }

    /// Batch load (R2-M).
    pub fn load(&mut self, batch: Vec<(ProcId, NodeId)>) -> Result<(), MppError> {
        self.apply(MppMove::Load(batch))
    }

    /// Batch store (R1-M).
    pub fn store(&mut self, batch: Vec<(ProcId, NodeId)>) -> Result<(), MppError> {
        self.apply(MppMove::Store(batch))
    }

    /// Remove a red pebble (R4-M).
    pub fn remove_red(&mut self, proc: ProcId, v: NodeId) -> Result<(), MppError> {
        self.apply(MppMove::Remove(Pebble::Red(proc, v)))
    }

    /// Remove a blue pebble (R4-M).
    pub fn remove_blue(&mut self, v: NodeId) -> Result<(), MppError> {
        self.apply(MppMove::Remove(Pebble::Blue(v)))
    }

    /// Stores `v` from `proc` only if it has no blue pebble yet; no-op
    /// (and no cost) otherwise. Convenience for schedulers.
    pub fn ensure_stored(&mut self, proc: ProcId, v: NodeId) -> Result<(), MppError> {
        if self.config.blue.contains(v) {
            return Ok(());
        }
        self.store(vec![(proc, v)])
    }

    /// Checks terminality and returns the finished run.
    pub fn finish(self) -> Result<MppRun, MppError> {
        if let Some(sink) = self
            .instance
            .dag
            .sinks()
            .into_iter()
            .find(|&s| !self.config.has_pebble(s))
        {
            return Err(MppError {
                step: self.moves.len(),
                kind: MppErrorKind::NotTerminal(sink),
            });
        }
        Ok(MppRun {
            strategy: MppStrategy::from_moves(self.moves),
            cost: self.cost,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbp_dag::dag_from_edges;

    fn v(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn simulator_replays_like_validator() {
        let d = dag_from_edges(2, &[(0, 1)]);
        let inst = MppInstance::new(&d, 2, 2, 3);
        let mut sim = MppSimulator::new(inst);
        sim.compute(vec![(0, v(0))]).unwrap();
        sim.store(vec![(0, v(0))]).unwrap();
        sim.load(vec![(1, v(0))]).unwrap();
        sim.compute(vec![(1, v(1))]).unwrap();
        let run = sim.finish().unwrap();
        assert_eq!(run.cost.io_steps(), 2);
        // Independent re-validation agrees.
        let cost2 = run.strategy.validate(&inst).unwrap();
        assert_eq!(cost2, run.cost);
    }

    #[test]
    fn illegal_move_leaves_state_unchanged() {
        let d = dag_from_edges(2, &[(0, 1)]);
        let inst = MppInstance::new(&d, 1, 2, 1);
        let mut sim = MppSimulator::new(inst);
        assert!(sim.compute(vec![(0, v(1))]).is_err());
        assert_eq!(sim.steps(), 0);
        // Still able to proceed correctly.
        sim.compute(vec![(0, v(0))]).unwrap();
        sim.compute(vec![(0, v(1))]).unwrap();
        assert!(sim.finish().is_ok());
    }

    #[test]
    fn finish_rejects_non_terminal() {
        let d = dag_from_edges(2, &[(0, 1)]);
        let inst = MppInstance::new(&d, 1, 2, 1);
        let mut sim = MppSimulator::new(inst);
        sim.compute(vec![(0, v(0))]).unwrap();
        let err = sim.finish().unwrap_err();
        assert_eq!(err.kind, MppErrorKind::NotTerminal(v(1)));
    }

    #[test]
    fn ensure_stored_is_idempotent() {
        let d = dag_from_edges(1, &[]);
        let inst = MppInstance::new(&d, 1, 1, 7);
        let mut sim = MppSimulator::new(inst);
        sim.compute(vec![(0, v(0))]).unwrap();
        sim.ensure_stored(0, v(0)).unwrap();
        sim.ensure_stored(0, v(0)).unwrap();
        assert_eq!(sim.cost().stores, 1);
    }

    #[test]
    fn remove_red_frees_capacity() {
        let d = dag_from_edges(2, &[]);
        let inst = MppInstance::new(&d, 1, 1, 1);
        let mut sim = MppSimulator::new(inst);
        sim.compute(vec![(0, v(0))]).unwrap();
        sim.store(vec![(0, v(0))]).unwrap();
        sim.remove_red(0, v(0)).unwrap();
        sim.compute(vec![(0, v(1))]).unwrap();
        let run = sim.finish().unwrap();
        assert_eq!(run.cost.stores, 1);
    }
}
