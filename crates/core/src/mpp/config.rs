//! MPP instances and configurations.

use rbp_dag::{Dag, NodeId, NodeSet};

use crate::CostModel;

/// An MPP problem instance: pebble `dag` with `k` processors, each with
/// fast memory `r`, under `model` (I/O costs `g`, computes cost 1 in the
/// paper's cost function).
#[derive(Debug, Clone, Copy)]
pub struct MppInstance<'a> {
    /// The computational DAG.
    pub dag: &'a Dag,
    /// Number of processors (shades of red).
    pub k: usize,
    /// Fast memory capacity per processor.
    pub r: usize,
    /// Rule costs.
    pub model: CostModel,
}

impl<'a> MppInstance<'a> {
    /// Standard paper instance: compute cost 1, I/O cost `g`.
    #[must_use]
    pub fn new(dag: &'a Dag, k: usize, r: usize, g: u64) -> Self {
        MppInstance {
            dag,
            k,
            r,
            model: CostModel::mpp(g),
        }
    }

    /// Feasibility requires `r ≥ Δ_in + 1` and at least one processor.
    #[must_use]
    pub fn is_feasible(&self) -> bool {
        self.k >= 1 && self.r > self.dag.max_in_degree()
    }
}

/// A configuration `(R^1, …, R^k, B)`: one red set per processor plus the
/// shared blue set. `computed` additionally tracks nodes ever computed
/// (any shade), for statistics; it is not part of the paper's state but
/// never affects rule legality in the base game.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Configuration {
    /// Red pebbles per processor shade.
    pub reds: Vec<NodeSet>,
    /// Blue pebbles (shared slow memory).
    pub blue: NodeSet,
    /// Nodes computed at least once, by any processor.
    pub computed: NodeSet,
}

impl Configuration {
    /// The empty initial configuration `C_0`.
    #[must_use]
    pub fn initial(dag: &Dag, k: usize) -> Self {
        Configuration {
            reds: vec![dag.empty_set(); k],
            blue: dag.empty_set(),
            computed: dag.empty_set(),
        }
    }

    /// Number of processors.
    #[must_use]
    pub fn k(&self) -> usize {
        self.reds.len()
    }

    /// Whether `v` holds any pebble (any shade or blue).
    #[must_use]
    pub fn has_pebble(&self, v: NodeId) -> bool {
        self.blue.contains(v) || self.reds.iter().any(|r| r.contains(v))
    }

    /// Whether the configuration is valid for capacity `r`.
    #[must_use]
    pub fn is_valid(&self, r: usize) -> bool {
        self.reds.iter().all(|s| s.len() <= r)
    }

    /// Whether the configuration is terminal for `dag`: every sink holds
    /// a pebble (blue or any shade of red).
    #[must_use]
    pub fn is_terminal(&self, dag: &Dag) -> bool {
        dag.sinks().into_iter().all(|s| self.has_pebble(s))
    }

    /// The union of all red sets.
    #[must_use]
    pub fn red_union(&self) -> NodeSet {
        let mut u = match self.reds.first() {
            Some(first) => first.clone(),
            None => return NodeSet::new(0),
        };
        for s in &self.reds[1..] {
            u.union_with(s);
        }
        u
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbp_dag::dag_from_edges;

    #[test]
    fn initial_configuration_is_empty_and_valid() {
        let d = dag_from_edges(3, &[(0, 1), (1, 2)]);
        let c = Configuration::initial(&d, 2);
        assert_eq!(c.k(), 2);
        assert!(c.is_valid(0));
        assert!(!c.is_terminal(&d));
        assert!(!c.has_pebble(NodeId(0)));
        assert!(c.red_union().is_empty());
    }

    #[test]
    fn terminal_accepts_any_shade_or_blue() {
        let d = dag_from_edges(2, &[(0, 1)]);
        let mut c = Configuration::initial(&d, 2);
        c.reds[1].insert(NodeId(1));
        assert!(c.is_terminal(&d));
        let mut c2 = Configuration::initial(&d, 2);
        c2.blue.insert(NodeId(1));
        assert!(c2.is_terminal(&d));
    }

    #[test]
    fn validity_checks_each_processor() {
        let d = dag_from_edges(3, &[]);
        let mut c = Configuration::initial(&d, 2);
        c.reds[0].insert(NodeId(0));
        c.reds[0].insert(NodeId(1));
        c.reds[1].insert(NodeId(2));
        assert!(c.is_valid(2));
        assert!(!c.is_valid(1));
    }

    #[test]
    fn red_union_merges_shades() {
        let d = dag_from_edges(3, &[]);
        let mut c = Configuration::initial(&d, 2);
        c.reds[0].insert(NodeId(0));
        c.reds[1].insert(NodeId(0));
        c.reds[1].insert(NodeId(2));
        assert_eq!(c.red_union().len(), 2);
    }

    #[test]
    fn feasibility() {
        let d = dag_from_edges(3, &[(0, 2), (1, 2)]);
        assert!(!MppInstance::new(&d, 2, 2, 1).is_feasible());
        assert!(MppInstance::new(&d, 2, 3, 1).is_feasible());
        assert!(!MppInstance::new(&d, 0, 3, 1).is_feasible());
    }
}
