//! Asynchronous re-timing of MPP strategies (§3.3 model discussion).
//!
//! MPP's rules are synchronous: one step is one rule, and a processor
//! computing cannot overlap another processor's memory access. §3.3
//! notes the natural asynchronous alternative — each processor executes
//! its own SPP-style ops independently — and that the improvement from
//! de-synchronizing is bounded (a factor 2, via the BSP scheduling
//! analysis of Papp–Anegg–Yzelman).
//!
//! [`async_makespan`] re-times a *valid* MPP strategy under that
//! asynchronous semantics: every batched rule is decomposed into
//! per-processor ops (duration `g` for transfers, `compute` for R3);
//! each processor runs its own ops in strategy order; a load of `v` must
//! additionally wait for the store that made `v` available in slow
//! memory. The result is the earliest finish time — a lower bound on
//! any asynchronous execution of the same op multiset in the same
//! per-processor order, and directly comparable to the synchronous cost.

use std::collections::HashMap;

use rbp_dag::NodeId;

use crate::{MppInstance, MppMove, MppStrategy};

/// The asynchronous re-timing of a strategy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsyncTiming {
    /// Finish time of each processor.
    pub finish_per_proc: Vec<u64>,
    /// The makespan (max finish time).
    pub makespan: u64,
}

/// Re-times `strategy` (which must be valid for `instance`) under
/// asynchronous per-processor execution. See the module docs.
#[must_use]
pub fn async_makespan(instance: &MppInstance, strategy: &MppStrategy) -> AsyncTiming {
    let g = instance.model.g;
    let compute = instance.model.compute;
    let mut proc_time = vec![0u64; instance.k];
    // When each node's latest blue copy becomes available.
    let mut blue_avail: HashMap<NodeId, u64> = HashMap::new();
    for mv in &strategy.moves {
        match mv {
            MppMove::Compute(batch) => {
                for &(p, _) in batch {
                    proc_time[p] += compute;
                }
            }
            MppMove::Store(batch) => {
                for &(p, v) in batch {
                    proc_time[p] += g;
                    let done = proc_time[p];
                    blue_avail
                        .entry(v)
                        .and_modify(|t| *t = (*t).max(done))
                        .or_insert(done);
                }
            }
            MppMove::Load(batch) => {
                for &(p, v) in batch {
                    let start = proc_time[p].max(blue_avail.get(&v).copied().unwrap_or(0));
                    proc_time[p] = start + g;
                }
            }
            MppMove::Remove(_) => {}
        }
    }
    let makespan = proc_time.iter().copied().max().unwrap_or(0);
    AsyncTiming {
        finish_per_proc: proc_time,
        makespan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MppSimulator;
    use rbp_dag::{dag_from_edges, generators};

    fn v(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn single_processor_async_equals_sync() {
        // With k=1 there is nothing to overlap.
        let dag = generators::chain(5);
        let inst = MppInstance::new(&dag, 1, 2, 3);
        let mut sim = MppSimulator::new(inst);
        let mut prev = None;
        for node in dag.topo().order() {
            sim.compute(vec![(0, *node)]).unwrap();
            if let Some(p) = prev {
                sim.remove_red(0, p).unwrap();
            }
            prev = Some(*node);
        }
        let run = sim.finish().unwrap();
        let t = async_makespan(&inst, &run.strategy);
        assert_eq!(t.makespan, run.cost.total(inst.model));
    }

    #[test]
    fn compute_overlaps_io_asynchronously() {
        // p0 does an expensive store while p1 computes: synchronously
        // g + 1 steps of cost; asynchronously max(g, 1).
        let dag = dag_from_edges(2, &[]);
        let g = 5;
        let inst = MppInstance::new(&dag, 2, 1, g);
        let mut sim = MppSimulator::new(inst);
        sim.compute(vec![(0, v(0))]).unwrap();
        sim.store(vec![(0, v(0))]).unwrap();
        sim.compute(vec![(1, v(1))]).unwrap();
        let run = sim.finish().unwrap();
        let sync = run.cost.total(inst.model); // 1 + g + 1
        let t = async_makespan(&inst, &run.strategy);
        assert_eq!(sync, g + 2);
        assert_eq!(t.makespan, 1 + g, "p1's compute hides under p0's store");
        assert_eq!(t.finish_per_proc, vec![1 + g, 1]);
    }

    #[test]
    fn loads_wait_for_their_store() {
        // Communication cannot be compressed: store then dependent load
        // serialize even asynchronously.
        let dag = dag_from_edges(2, &[(0, 1)]);
        let g = 4;
        let inst = MppInstance::new(&dag, 2, 2, g);
        let mut sim = MppSimulator::new(inst);
        sim.compute(vec![(0, v(0))]).unwrap();
        sim.store(vec![(0, v(0))]).unwrap();
        sim.load(vec![(1, v(0))]).unwrap();
        sim.compute(vec![(1, v(1))]).unwrap();
        let run = sim.finish().unwrap();
        let t = async_makespan(&inst, &run.strategy);
        // p1: waits until 1+g (store done), loads (+g), computes (+1).
        assert_eq!(t.makespan, 1 + g + g + 1);
        assert_eq!(t.makespan, run.cost.total(inst.model));
    }

    #[test]
    fn async_never_exceeds_sync_and_is_at_least_critical_work() {
        let dag = generators::independent_chains(2, 6);
        let inst = MppInstance::new(&dag, 2, 3, 2);
        let mut sim = MppSimulator::new(inst);
        for i in 0..6u32 {
            sim.compute(vec![(0, v(i)), (1, v(i + 6))]).unwrap();
            if i > 0 {
                sim.remove_red(0, v(i - 1)).unwrap();
                sim.remove_red(1, v(i + 5)).unwrap();
            }
        }
        let run = sim.finish().unwrap();
        let sync = run.cost.total(inst.model);
        let t = async_makespan(&inst, &run.strategy);
        assert!(t.makespan <= sync);
        assert!(
            t.makespan * inst.k as u64 >= sync,
            "k-fold speedup is the cap"
        );
    }

    #[test]
    fn empty_strategy_is_instant() {
        let dag = dag_from_edges(0, &[]);
        let inst = MppInstance::new(&dag, 2, 1, 1);
        let t = async_makespan(&inst, &MppStrategy::new());
        assert_eq!(t.makespan, 0);
    }
}
