//! MPP strategy representation and the rule-enforcing validator.

use rbp_dag::NodeId;

use crate::{Configuration, Cost, MppInstance, MppMove, Pebble, ProcId};

/// An MPP pebbling strategy: the sequence of rule applications
/// `(t_1, …, t_T)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MppStrategy {
    /// The moves, in execution order.
    pub moves: Vec<MppMove>,
}

impl MppStrategy {
    /// Empty strategy.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Strategy from a move list.
    #[must_use]
    pub fn from_moves(moves: Vec<MppMove>) -> Self {
        MppStrategy { moves }
    }

    /// Number of moves.
    #[must_use]
    pub fn len(&self) -> usize {
        self.moves.len()
    }

    /// Whether there are no moves.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty()
    }

    /// Appends a move.
    pub fn push(&mut self, m: MppMove) {
        self.moves.push(m);
    }

    /// Validates against `instance` and returns the cost tally.
    pub fn validate(&self, instance: &MppInstance) -> Result<Cost, MppError> {
        validate(instance, &self.moves)
    }
}

/// A rule violation found while replaying an MPP strategy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MppError {
    /// Index of the offending move (or `moves.len()` for terminal-state
    /// failures).
    pub step: usize,
    /// What went wrong.
    pub kind: MppErrorKind,
}

/// The kinds of MPP rule violations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MppErrorKind {
    /// A batch was empty.
    EmptySelection,
    /// A processor index is `≥ k`.
    BadProcessor(ProcId),
    /// The same processor appears twice in one shaded selection
    /// (selections are injective).
    DuplicateProcessor(ProcId),
    /// The same vertex appears twice in one R1-M/R2-M batch (the rule's
    /// set semantics make blue-side vertices distinct).
    DuplicateVertex(NodeId),
    /// R1-M: processor `proc` holds no red pebble on `node`.
    StoreWithoutRed {
        /// The storing processor.
        proc: ProcId,
        /// The node it tried to store.
        node: NodeId,
    },
    /// R2-M: `node` holds no blue pebble.
    LoadWithoutBlue(NodeId),
    /// R3-M: an input of `node` lacks a red pebble of `proc`'s shade.
    MissingInput {
        /// The computing processor.
        proc: ProcId,
        /// The node being computed.
        node: NodeId,
        /// The missing input.
        missing: NodeId,
    },
    /// Placing a red pebble would exceed processor `proc`'s capacity.
    MemoryExceeded {
        /// The overflowing processor.
        proc: ProcId,
        /// The capacity.
        r: usize,
    },
    /// Redundant placement (node already holds that exact pebble).
    AlreadyPebbled(NodeId),
    /// R4-M applied to a pebble that is not on the board.
    RemoveAbsent(Pebble),
    /// After the last move some sink holds no pebble.
    NotTerminal(NodeId),
}

impl std::fmt::Display for MppError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "step {}: {:?}", self.step, self.kind)
    }
}

impl std::error::Error for MppError {}

/// Replays `moves` on `instance`, enforcing every rule, the per-processor
/// memory bound, and terminality. Returns the cost tally.
pub fn validate(instance: &MppInstance, moves: &[MppMove]) -> Result<Cost, MppError> {
    let mut config = Configuration::initial(instance.dag, instance.k);
    let mut cost = Cost::zero();
    for (step, mv) in moves.iter().enumerate() {
        apply_checked(instance, &mut config, mv).map_err(|kind| MppError { step, kind })?;
        match mv {
            MppMove::Store(_) => cost.stores += 1,
            MppMove::Load(_) => cost.loads += 1,
            MppMove::Compute(_) => cost.computes += 1,
            MppMove::Remove(_) => {}
        }
    }
    if let Some(sink) = instance
        .dag
        .sinks()
        .into_iter()
        .find(|&s| !config.has_pebble(s))
    {
        return Err(MppError {
            step: moves.len(),
            kind: MppErrorKind::NotTerminal(sink),
        });
    }
    Ok(cost)
}

/// Applies one move to `config` if legal in `instance`, mutating
/// `config` only on success. This is the single-step replay primitive
/// behind [`validate`]; it is public so strategy transformers (e.g. the
/// `rbp-refine` neighborhood model) can reconstruct the configuration
/// at an arbitrary step without re-validating the whole prefix through
/// a simulator.
pub fn apply_move(
    instance: &MppInstance,
    config: &mut Configuration,
    mv: &MppMove,
) -> Result<(), MppErrorKind> {
    apply_checked(instance, config, mv)
}

/// Applies one move to `config` if legal in `instance`.
pub(crate) fn apply_checked(
    instance: &MppInstance,
    config: &mut Configuration,
    mv: &MppMove,
) -> Result<(), MppErrorKind> {
    let dag = instance.dag;
    let k = instance.k;
    let r = instance.r;

    let check_selection =
        |batch: &[(ProcId, NodeId)], distinct_vertices: bool| -> Result<(), MppErrorKind> {
            if batch.is_empty() {
                return Err(MppErrorKind::EmptySelection);
            }
            for (i, &(p, v)) in batch.iter().enumerate() {
                if p >= k {
                    return Err(MppErrorKind::BadProcessor(p));
                }
                for &(p2, v2) in &batch[..i] {
                    if p2 == p {
                        return Err(MppErrorKind::DuplicateProcessor(p));
                    }
                    if distinct_vertices && v2 == v {
                        return Err(MppErrorKind::DuplicateVertex(v));
                    }
                }
            }
            Ok(())
        };

    match mv {
        MppMove::Store(batch) => {
            check_selection(batch, true)?;
            for &(p, v) in batch {
                if !config.reds[p].contains(v) {
                    return Err(MppErrorKind::StoreWithoutRed { proc: p, node: v });
                }
                if config.blue.contains(v) {
                    return Err(MppErrorKind::AlreadyPebbled(v));
                }
            }
            for &(_, v) in batch {
                config.blue.insert(v);
            }
        }
        MppMove::Load(batch) => {
            check_selection(batch, true)?;
            for &(p, v) in batch {
                if !config.blue.contains(v) {
                    return Err(MppErrorKind::LoadWithoutBlue(v));
                }
                if config.reds[p].contains(v) {
                    return Err(MppErrorKind::AlreadyPebbled(v));
                }
                if config.reds[p].len() + 1 > r {
                    return Err(MppErrorKind::MemoryExceeded { proc: p, r });
                }
            }
            for &(p, v) in batch {
                config.reds[p].insert(v);
            }
        }
        MppMove::Compute(batch) => {
            // Vertices may repeat across processors in R3-M (two shades
            // may compute the same node simultaneously).
            check_selection(batch, false)?;
            for &(p, v) in batch {
                if config.reds[p].contains(v) {
                    return Err(MppErrorKind::AlreadyPebbled(v));
                }
                if let Some(&missing) = dag.preds(v).iter().find(|&&u| !config.reds[p].contains(u))
                {
                    return Err(MppErrorKind::MissingInput {
                        proc: p,
                        node: v,
                        missing,
                    });
                }
                if config.reds[p].len() + 1 > r {
                    return Err(MppErrorKind::MemoryExceeded { proc: p, r });
                }
            }
            for &(p, v) in batch {
                config.reds[p].insert(v);
                config.computed.insert(v);
            }
        }
        MppMove::Remove(pebble) => match *pebble {
            Pebble::Red(p, v) => {
                if p >= k {
                    return Err(MppErrorKind::BadProcessor(p));
                }
                if !config.reds[p].remove(v) {
                    return Err(MppErrorKind::RemoveAbsent(*pebble));
                }
            }
            Pebble::Blue(v) => {
                if !config.blue.remove(v) {
                    return Err(MppErrorKind::RemoveAbsent(*pebble));
                }
            }
        },
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbp_dag::dag_from_edges;

    fn v(i: u32) -> NodeId {
        NodeId(i)
    }

    /// Two independent 2-node chains: 0 -> 1, 2 -> 3.
    fn two_chains() -> rbp_dag::Dag {
        dag_from_edges(4, &[(0, 1), (2, 3)])
    }

    #[test]
    fn parallel_compute_batches_validate() {
        let d = two_chains();
        let inst = MppInstance::new(&d, 2, 2, 1);
        let cost = validate(
            &inst,
            &[
                MppMove::Compute(vec![(0, v(0)), (1, v(2))]),
                MppMove::Compute(vec![(0, v(1)), (1, v(3))]),
            ],
        )
        .unwrap();
        // 2 steps total: batching halves the compute cost.
        assert_eq!(cost.computes, 2);
        assert_eq!(cost.io_steps(), 0);
    }

    #[test]
    fn communication_via_blue_validates() {
        // Proc 0 computes 0, communicates it to proc 1 via slow memory,
        // proc 1 computes 1.
        let d = dag_from_edges(2, &[(0, 1)]);
        let inst = MppInstance::new(&d, 2, 2, 3);
        let cost = validate(
            &inst,
            &[
                MppMove::compute1(0, v(0)),
                MppMove::store1(0, v(0)),
                MppMove::load1(1, v(0)),
                MppMove::compute1(1, v(1)),
            ],
        )
        .unwrap();
        assert_eq!(cost.io_steps(), 2);
        assert_eq!(cost.total(inst.model), 2 * 3 + 2);
    }

    #[test]
    fn shades_are_isolated() {
        // Proc 1 cannot compute 1 from proc 0's red pebble on 0.
        let d = dag_from_edges(2, &[(0, 1)]);
        let inst = MppInstance::new(&d, 2, 2, 1);
        let err = validate(
            &inst,
            &[MppMove::compute1(0, v(0)), MppMove::compute1(1, v(1))],
        )
        .unwrap_err();
        assert_eq!(
            err.kind,
            MppErrorKind::MissingInput {
                proc: 1,
                node: v(1),
                missing: v(0)
            }
        );
    }

    #[test]
    fn injective_selection_enforced() {
        let d = two_chains();
        let inst = MppInstance::new(&d, 2, 2, 1);
        let err = validate(&inst, &[MppMove::Compute(vec![(0, v(0)), (0, v(2))])]).unwrap_err();
        assert_eq!(err.kind, MppErrorKind::DuplicateProcessor(0));
    }

    #[test]
    fn load_batch_vertices_must_be_distinct() {
        let d = two_chains();
        let inst = MppInstance::new(&d, 2, 2, 1);
        let err = validate(
            &inst,
            &[
                MppMove::compute1(0, v(0)),
                MppMove::store1(0, v(0)),
                MppMove::Load(vec![(1, v(0)), (0, v(0))]),
            ],
        )
        .unwrap_err();
        // Proc 0 already has red on v0 → AlreadyPebbled fires on the
        // second pair... unless duplicate-vertex fires first.
        assert!(matches!(
            err.kind,
            MppErrorKind::DuplicateVertex(_) | MppErrorKind::AlreadyPebbled(_)
        ));
    }

    #[test]
    fn same_vertex_may_be_computed_by_two_shades_at_once() {
        // Both processors compute source 0 simultaneously: one R3-M step.
        let d = dag_from_edges(1, &[]);
        let inst = MppInstance::new(&d, 2, 1, 1);
        let cost = validate(&inst, &[MppMove::Compute(vec![(0, v(0)), (1, v(0))])]).unwrap();
        assert_eq!(cost.computes, 1);
    }

    #[test]
    fn per_processor_capacity_enforced() {
        let d = dag_from_edges(3, &[]);
        let inst = MppInstance::new(&d, 2, 1, 1);
        let err = validate(
            &inst,
            &[MppMove::compute1(0, v(0)), MppMove::compute1(0, v(1))],
        )
        .unwrap_err();
        assert_eq!(err.kind, MppErrorKind::MemoryExceeded { proc: 0, r: 1 });
    }

    #[test]
    fn batch_capacity_checked_per_processor() {
        // k=2, r=1: batch compute of two different sources is fine
        // (one new pebble per proc), but a second batch overflows.
        let d = dag_from_edges(4, &[]);
        let inst = MppInstance::new(&d, 2, 1, 1);
        validate(&inst, &[MppMove::Compute(vec![(0, v(0)), (1, v(1))])]).unwrap_err(); // not terminal
        let err = validate(
            &inst,
            &[
                MppMove::Compute(vec![(0, v(0)), (1, v(1))]),
                MppMove::Compute(vec![(0, v(2)), (1, v(3))]),
            ],
        )
        .unwrap_err();
        assert!(matches!(err.kind, MppErrorKind::MemoryExceeded { .. }));
    }

    #[test]
    fn removals_and_terminality() {
        let d = dag_from_edges(1, &[]);
        let inst = MppInstance::new(&d, 1, 1, 1);
        // Removing the only pebble leaves the sink bare.
        let err = validate(
            &inst,
            &[
                MppMove::compute1(0, v(0)),
                MppMove::Remove(Pebble::Red(0, v(0))),
            ],
        )
        .unwrap_err();
        assert_eq!(err.kind, MppErrorKind::NotTerminal(v(0)));
    }

    #[test]
    fn remove_absent_rejected() {
        let d = dag_from_edges(1, &[]);
        let inst = MppInstance::new(&d, 1, 1, 1);
        let err = validate(&inst, &[MppMove::Remove(Pebble::Blue(v(0)))]).unwrap_err();
        assert_eq!(err.kind, MppErrorKind::RemoveAbsent(Pebble::Blue(v(0))));
    }

    #[test]
    fn empty_selection_rejected() {
        let d = dag_from_edges(1, &[]);
        let inst = MppInstance::new(&d, 1, 1, 1);
        let err = validate(&inst, &[MppMove::Compute(vec![])]).unwrap_err();
        assert_eq!(err.kind, MppErrorKind::EmptySelection);
    }

    #[test]
    fn bad_processor_rejected() {
        let d = dag_from_edges(1, &[]);
        let inst = MppInstance::new(&d, 1, 1, 1);
        let err = validate(&inst, &[MppMove::compute1(3, v(0))]).unwrap_err();
        assert_eq!(err.kind, MppErrorKind::BadProcessor(3));
    }

    #[test]
    fn store_requires_own_shade() {
        let d = dag_from_edges(1, &[]);
        let inst = MppInstance::new(&d, 2, 1, 1);
        let err = validate(
            &inst,
            &[MppMove::compute1(0, v(0)), MppMove::store1(1, v(0))],
        )
        .unwrap_err();
        assert_eq!(
            err.kind,
            MppErrorKind::StoreWithoutRed {
                proc: 1,
                node: v(0)
            }
        );
    }

    #[test]
    fn k1_mpp_equals_spp_behaviour() {
        // With k=1 the game degenerates to SPP with compute costs.
        let d = dag_from_edges(2, &[(0, 1)]);
        let inst = MppInstance::new(&d, 1, 2, 5);
        let cost = validate(
            &inst,
            &[MppMove::compute1(0, v(0)), MppMove::compute1(0, v(1))],
        )
        .unwrap();
        assert_eq!(cost.total(inst.model), 2);
    }
}
