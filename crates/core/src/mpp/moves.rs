//! The four MPP transition rules as explicit moves.

use rbp_dag::NodeId;

/// Index of a processor, `0 ≤ proc < k`.
pub type ProcId = usize;

/// A pebble reference, for deletions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pebble {
    /// A red pebble of the given shade on the given node.
    Red(ProcId, NodeId),
    /// A blue pebble on the given node.
    Blue(NodeId),
}

/// One application of an MPP rule.
///
/// The `Vec<(ProcId, NodeId)>` in the parallel rules is the *shaded
/// selection*: an assignment of distinct processors to vertices. A whole
/// batch is one rule application and incurs one unit of cost (`g` for
/// [`MppMove::Store`]/[`MppMove::Load`], `compute` for
/// [`MppMove::Compute`]) regardless of its size `1 ≤ m ≤ k`.
///
/// The four rules on a two-node chain `v0 → v1`, played through the
/// rule-enforcing simulator (two processors, `r = 2`, `g = 1`):
///
/// ```
/// use rbp_core::rbp_dag::{generators, NodeId};
/// use rbp_core::{MppInstance, MppSimulator};
///
/// let dag = generators::chain(2);
/// let inst = MppInstance::new(&dag, 2, 2, 1);
/// let mut sim = MppSimulator::new(inst);
/// sim.compute(vec![(0, NodeId(0))]).unwrap(); // R3-M: source has no inputs
/// sim.store(vec![(0, NodeId(0))]).unwrap();   // R1-M: red → blue copy
/// sim.load(vec![(1, NodeId(0))]).unwrap();    // R2-M: blue → p1's red
/// sim.compute(vec![(1, NodeId(1))]).unwrap(); // R3-M: inputs red on p1
/// sim.remove_red(0, NodeId(0)).unwrap();      // R4-M: deletion is free
/// let run = sim.finish().unwrap();
/// assert_eq!(run.cost.computes, 2);
/// assert_eq!(run.cost.stores + run.cost.loads, 2); // I/O cost = 2·g
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum MppMove {
    /// R1-M: each selected processor copies one of its red values to slow
    /// memory (adds a blue pebble). Costs `g`.
    Store(Vec<(ProcId, NodeId)>),
    /// R2-M: each selected processor loads one blue value into its fast
    /// memory (adds a red pebble of its shade). Vertices in one batch are
    /// distinct, per the set notation in the rule. Costs `g`.
    Load(Vec<(ProcId, NodeId)>),
    /// R3-M: each selected processor computes one node whose inputs all
    /// hold red pebbles of that processor's shade. Costs `compute`.
    Compute(Vec<(ProcId, NodeId)>),
    /// R4-M: remove one pebble. Free.
    Remove(Pebble),
}

impl MppMove {
    /// Whether this is an I/O rule (R1-M or R2-M).
    #[must_use]
    pub fn is_io(&self) -> bool {
        matches!(self, MppMove::Store(_) | MppMove::Load(_))
    }

    /// Size `m` of the shaded selection (1 for removals).
    #[must_use]
    pub fn batch_size(&self) -> usize {
        match self {
            MppMove::Store(b) | MppMove::Load(b) | MppMove::Compute(b) => b.len(),
            MppMove::Remove(_) => 1,
        }
    }

    /// Single-processor convenience constructors.
    #[must_use]
    pub fn store1(proc: ProcId, v: NodeId) -> Self {
        MppMove::Store(vec![(proc, v)])
    }

    /// Single-processor load.
    #[must_use]
    pub fn load1(proc: ProcId, v: NodeId) -> Self {
        MppMove::Load(vec![(proc, v)])
    }

    /// Single-processor compute.
    #[must_use]
    pub fn compute1(proc: ProcId, v: NodeId) -> Self {
        MppMove::Compute(vec![(proc, v)])
    }
}

impl std::fmt::Display for MppMove {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let write_batch = |f: &mut std::fmt::Formatter<'_>, name: &str, b: &[(ProcId, NodeId)]| {
            write!(f, "{name}[")?;
            for (i, (p, v)) in b.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "p{p}:{v}")?;
            }
            write!(f, "]")
        };
        match self {
            MppMove::Store(b) => write_batch(f, "store", b),
            MppMove::Load(b) => write_batch(f, "load", b),
            MppMove::Compute(b) => write_batch(f, "compute", b),
            MppMove::Remove(Pebble::Red(p, v)) => write!(f, "remove[p{p}:{v}]"),
            MppMove::Remove(Pebble::Blue(v)) => write!(f, "remove[blue:{v}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_and_size() {
        let m = MppMove::Compute(vec![(0, NodeId(1)), (1, NodeId(2))]);
        assert!(!m.is_io());
        assert_eq!(m.batch_size(), 2);
        assert!(MppMove::store1(0, NodeId(3)).is_io());
        assert!(MppMove::load1(1, NodeId(3)).is_io());
        assert_eq!(MppMove::Remove(Pebble::Blue(NodeId(0))).batch_size(), 1);
    }

    #[test]
    fn display() {
        let m = MppMove::Load(vec![(0, NodeId(5)), (1, NodeId(6))]);
        assert_eq!(m.to_string(), "load[p0:v5, p1:v6]");
        assert_eq!(
            MppMove::Remove(Pebble::Red(1, NodeId(2))).to_string(),
            "remove[p1:v2]"
        );
    }
}
