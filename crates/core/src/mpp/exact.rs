//! Exact optimal MPP solver for small instances.
//!
//! A\* search over configurations `(R^1..R^k, B)` packed into `u64`
//! masks, built on the shared [`crate::search`] engine. Transitions are
//! whole rule applications: all non-empty batched selections of a single
//! rule type are enumerated (each processor independently acts or
//! idles), so the solver exploits the paper's one-cost-per-parallel-step
//! semantics exactly.
//!
//! State-space reductions, all correctness-preserving:
//!
//! - **Processor symmetry.** Processors are interchangeable (equal
//!   capacity `r`, shared blue memory), so configurations differing only
//!   by a relabeling of shades are equivalent. Keys are canonicalized by
//!   sorting the per-processor red masks, collapsing up to `k!`
//!   states into one; witness reconstruction re-applies the permutation
//!   trail so the returned strategy uses consistent concrete labels.
//! - **Admissible heuristic.** `ceil(|needed| / k) · compute`, where
//!   `needed` is the set of nodes that provably must still be computed
//!   (see [`crate::search::AdmissibleHeuristic`]). With the heuristic
//!   disabled the solver degenerates to the original uniform-cost
//!   search.
//! - The two classic normalizations: blue pebbles are never deleted,
//!   and red deletions are generated lazily, only on a processor at
//!   capacity (`≥ r`, so a capacity-1 processor still makes progress).
//!
//! Complexity is brutal by design (the problem is NP-hard even for
//! 2-layer DAGs, Lemma 2): intended for `n ≤ ~10`, `k ≤ 4`.

use rbp_dag::NodeId;
use rbp_util::Json;

use crate::arena::{pack_fields, unpack_fields, words_for};
use crate::driver::{self, Domain, EmitFn};
use crate::partition::Partition;
use crate::search::{
    trace_shards, HeurCtx, PackedMove, PhaseProf, PhaseStats, SearchConfig, SearchOutcome,
    SearchStats, ShardStats, StopReason, MAX_THREADS,
};
use crate::{AdmissibleHeuristic, Cost, MppInstance, MppMove, MppStrategy, Pebble, SolveLimits};

const MAX_K: usize = 4;

/// An optimal solution found by [`solve`].
#[derive(Debug, Clone)]
pub struct MppSolution {
    /// The optimal total cost under the instance's cost model.
    pub total: u64,
    /// Tally of the optimal strategy's rule applications.
    pub cost: Cost,
    /// A witness strategy achieving `total`.
    pub strategy: MppStrategy,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct Key {
    reds: [u64; MAX_K],
    blue: u64,
}

impl Key {
    #[inline]
    fn red_all(&self) -> u64 {
        self.reds.iter().fold(0, |a, &b| a | b)
    }
}

// Packed move layout (see `crate::search::PackedMove`): bits 30..=31
// hold the tag; batch moves store one 7-bit slot per processor
// (bit 6 = active, bits 0..=5 = node); removals store the node in bits
// 0..=5 and the processor in bits 6..=7.
const TAG_COMPUTE: u32 = 0;
const TAG_LOAD: u32 = 1;
const TAG_STORE: u32 = 2;
const TAG_REMOVE: u32 = 3;

#[inline]
fn encode_batch(tag: u32, batch: &[(usize, u32)]) -> PackedMove {
    let mut w = tag << 30;
    for &(j, i) in batch {
        w |= (0x40 | i) << (7 * j as u32);
    }
    w
}

#[inline]
fn encode_remove(proc: usize, node: u32) -> PackedMove {
    (TAG_REMOVE << 30) | ((proc as u32) << 6) | node
}

fn decode(w: PackedMove, k: usize) -> (u32, Vec<(usize, u32)>) {
    let tag = w >> 30;
    if tag == TAG_REMOVE {
        return (tag, vec![(((w >> 6) & 0x3) as usize, w & 0x3f)]);
    }
    let mut pairs = Vec::new();
    for j in 0..k {
        let slot = (w >> (7 * j as u32)) & 0x7f;
        if slot & 0x40 != 0 {
            pairs.push((j, slot & 0x3f));
        }
    }
    (tag, pairs)
}

fn apply(key: &mut Key, tag: u32, pairs: &[(usize, u32)]) {
    match tag {
        TAG_COMPUTE | TAG_LOAD => {
            for &(j, i) in pairs {
                key.reds[j] |= 1 << i;
            }
        }
        TAG_STORE => {
            for &(_, i) in pairs {
                key.blue |= 1 << i;
            }
        }
        _ => {
            let (j, i) = pairs[0];
            key.reds[j] &= !(1 << i);
        }
    }
}

/// Sorts the first `len` masks descending (insertion sort; `len ≤ 4`).
#[inline]
fn sort_desc(xs: &mut [u64]) {
    for i in 1..xs.len() {
        let mut j = i;
        while j > 0 && xs[j] > xs[j - 1] {
            xs.swap(j, j - 1);
            j -= 1;
        }
    }
}

/// Whether the masks are already in canonical (descending) order — the
/// memo check that lets most successors skip the sort: the parent is
/// canonical, and a move that leaves the relative order of the red
/// masks intact (every store, most single-processor acquires) produces
/// an already-sorted child.
#[inline]
fn is_sorted_desc(xs: &[u64]) -> bool {
    xs.windows(2).all(|w| w[0] >= w[1])
}

/// Canonicalizes `raw` and returns the gather permutation `pi` such that
/// `canonical.reds[q] == raw.reds[pi[q]]`.
fn canon_with_perm(raw: Key, k: usize, symmetry: bool) -> (Key, [usize; MAX_K]) {
    let mut idx = [0usize, 1, 2, 3];
    if !symmetry {
        return (raw, idx);
    }
    idx[..k].sort_by(|&a, &b| raw.reds[b].cmp(&raw.reds[a]));
    let mut out = raw;
    for (q, &i) in idx[..k].iter().enumerate() {
        out.reds[q] = raw.reds[i];
    }
    (out, idx)
}

/// Finds a minimum-total-cost MPP pebbling with the default (fully
/// optimized) configuration, or `None` if infeasible (`r ≤ Δ_in`), too
/// large (`n > 64` or `k > 4`), or out of budget.
#[must_use]
pub fn solve(instance: &MppInstance, limits: SolveLimits) -> Option<MppSolution> {
    solve_with(instance, &SearchConfig::default().with_limits(limits)).solution
}

/// [`solve`] with explicit optimization switches, also reporting search
/// statistics (settled/pushed state counts) for benchmarking. Each call
/// opens a `solve.mpp` trace span and reports the search counters and
/// heuristic tightness through `rbp-trace` (no-ops unless a sink is
/// installed).
#[must_use]
pub fn solve_with(instance: &MppInstance, config: &SearchConfig) -> SearchOutcome<MppSolution> {
    let _span = rbp_trace::span_with(
        "solve.mpp",
        vec![
            ("n", Json::from(instance.dag.n())),
            ("k", Json::from(instance.k)),
            ("r", Json::from(instance.r)),
            ("g", Json::from(instance.model.g)),
            ("heuristic", Json::from(config.heuristic)),
            ("symmetry", Json::from(config.symmetry)),
            ("threads", Json::from(config.threads.max(1))),
            ("partition", Json::from(config.partition.as_str())),
        ],
    );
    let (solution, stats, reason, shards, phases) = solve_inner(instance, config);
    stats.trace("mpp", solution.as_ref().map(|s| s.total));
    trace_shards("mpp", &shards);
    phases.trace("mpp");
    SearchOutcome {
        solution,
        stats,
        reason,
        shards,
        phases,
    }
}

/// The MPP state space described for the shared search drivers: keys
/// are `(R^1..R^k, B)` masks bit-packed to `(k+1) * n` bits, successors
/// are whole batched rule applications (canonicalized under processor
/// symmetry before emission).
struct MppDomain {
    n: usize,
    k: usize,
    r: usize,
    compute: u64,
    g: u64,
    preds_mask: Vec<u64>,
    sinks_mask: u64,
    heur: AdmissibleHeuristic,
    use_heuristic: bool,
    symmetry: bool,
    dominance: bool,
    max_priority: u64,
    partition: Partition,
}

/// Reused per-worker expansion buffers (allocation-free inner loop) and
/// the embedded phase profiler the driver drains via `take_phases`.
struct MppScratch {
    batch: Vec<(usize, u32)>,
    prof: PhaseProf,
}

impl Default for MppScratch {
    fn default() -> Self {
        MppScratch {
            batch: Vec::with_capacity(MAX_K),
            prof: PhaseProf::default(),
        }
    }
}

impl Domain for MppDomain {
    type Key = Key;
    type Scratch = MppScratch;

    fn key_words(&self) -> usize {
        words_for(self.k + 1, self.n)
    }

    fn pack(&self, key: &Key, out: &mut [u64]) {
        let mut fields = [0u64; MAX_K + 1];
        fields[..self.k].copy_from_slice(&key.reds[..self.k]);
        fields[self.k] = key.blue;
        pack_fields(&fields[..self.k + 1], self.n, out);
    }

    fn unpack(&self, words: &[u64]) -> Key {
        let mut fields = [0u64; MAX_K + 1];
        unpack_fields(words, self.n, &mut fields[..self.k + 1]);
        let mut reds = [0u64; MAX_K];
        reds[..self.k].copy_from_slice(&fields[..self.k]);
        Key {
            reds,
            blue: fields[self.k],
        }
    }

    fn root(&self) -> Key {
        Key {
            reds: [0; MAX_K],
            blue: 0,
        }
    }

    fn is_goal(&self, key: &Key) -> bool {
        self.sinks_mask & !(key.red_all() | key.blue) == 0
    }

    fn heuristic(&self, key: &Key) -> Option<u64> {
        if self.use_heuristic {
            self.heur.eval(key.red_all(), key.blue, 0)
        } else {
            Some(0)
        }
    }

    fn max_priority(&self) -> u64 {
        self.max_priority
    }

    fn owner(&self, key: &Key, hash: u64, shards: usize) -> usize {
        self.partition.owner(key.red_all(), key.blue, hash, shards)
    }

    fn expand(&self, key: &Key, scratch: &mut MppScratch, emit: EmitFn<'_, Key>) {
        let (k, r, n) = (self.k, self.r, self.n);
        let key = *key;
        let full = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
        let MppScratch { batch, prof } = scratch;

        // Per-parent heuristic context: one from-scratch closure walk
        // whose needed set answers most successors in O(1) via
        // `eval_delta`.
        let hctx: Option<HeurCtx> = if self.use_heuristic {
            let t0 = prof.start();
            prof.stats.heur_full_evals += 1;
            let ctx = self.heur.prepare(key.red_all(), key.blue, 0);
            prof.stop_heur(t0);
            debug_assert!(ctx.is_some(), "MPP states are never dead");
            ctx
        } else {
            None
        };

        let mut emit_raw = |mut raw: Key, cost: u64, mv: PackedMove| {
            if self.symmetry {
                let t0 = prof.start();
                if is_sorted_desc(&raw.reds[..k]) {
                    prof.stats.canon_memo_hits += 1;
                } else {
                    sort_desc(&mut raw.reds[..k]);
                    prof.stats.canon_sorts += 1;
                }
                prof.stop_canon(t0);
            }
            emit(raw, cost, mv, &mut || {
                if !self.use_heuristic {
                    return Some(0);
                }
                let t0 = prof.start();
                let hv = match &hctx {
                    Some(ctx) => {
                        self.heur
                            .eval_delta(ctx, raw.red_all(), raw.blue, 0, &mut prof.stats)
                    }
                    None => self.heur.eval(raw.red_all(), raw.blue, 0),
                };
                prof.stop_heur(t0);
                hv
            });
        };

        // --- R4-M: lazy red eviction on full processors (cost 0). ---
        for j in 0..k {
            if key.reds[j].count_ones() as usize >= r {
                for i in iter_bits(key.reds[j]) {
                    let mut nk = key;
                    nk.reds[j] &= !(1u64 << i);
                    emit_raw(nk, 0, encode_remove(j, i));
                }
            }
        }

        let mut suppressed = 0u64;
        let mut opts = [0u64; MAX_K];

        // --- R3-M: batched computes. ---
        // Option masks per processor: eligible nodes (not yet red here,
        // all predecessors red here), empty at capacity.
        for (j, opt) in opts.iter_mut().enumerate().take(k) {
            *opt = 0;
            if key.reds[j].count_ones() as usize >= r {
                continue;
            }
            for i in iter_bits(full & !key.reds[j]) {
                if self.preds_mask[i as usize] & !key.reds[j] == 0 {
                    *opt |= 1u64 << i;
                }
            }
        }
        for_each_batch(
            &opts[..k],
            false,
            self.dominance,
            usize::MAX,
            batch,
            &mut suppressed,
            &mut |batch| {
                let mut nk = key;
                for &(j, i) in batch {
                    nk.reds[j] |= 1u64 << i;
                }
                emit_raw(nk, self.compute, encode_batch(TAG_COMPUTE, batch));
            },
        );

        // --- R2-M: batched loads (distinct vertices). ---
        for (j, opt) in opts.iter_mut().enumerate().take(k) {
            *opt = if key.reds[j].count_ones() as usize >= r {
                0
            } else {
                key.blue & !key.reds[j]
            };
        }
        for_each_batch(
            &opts[..k],
            true,
            self.dominance,
            usize::MAX,
            batch,
            &mut suppressed,
            &mut |batch| {
                let mut nk = key;
                for &(j, i) in batch {
                    nk.reds[j] |= 1u64 << i;
                }
                emit_raw(nk, self.g, encode_batch(TAG_LOAD, batch));
            },
        );

        // --- R1-M: batched stores (distinct vertices). ---
        // Storing an already-blue node is structurally excluded by the
        // option mask — the other half of the dominance story.
        for (j, opt) in opts.iter_mut().enumerate().take(k) {
            *opt = key.reds[j] & !key.blue;
        }
        for_each_batch(
            &opts[..k],
            true,
            self.dominance,
            usize::MAX,
            batch,
            &mut suppressed,
            &mut |batch| {
                let mut nk = key;
                for &(_, i) in batch {
                    nk.blue |= 1u64 << i;
                }
                emit_raw(nk, self.g, encode_batch(TAG_STORE, batch));
            },
        );

        prof.stats.idle_suppressed += suppressed;
    }

    fn take_phases(&self, scratch: &mut MppScratch) -> PhaseStats {
        scratch.prof.take()
    }
}

/// Builds the search domain for a supported, non-empty, feasible
/// instance; `None` otherwise (the caller distinguishes the trivial
/// `n == 0` case itself).
fn build_domain(instance: &MppInstance, config: &SearchConfig) -> Option<MppDomain> {
    let dag = instance.dag;
    let n = dag.n();
    let k = instance.k;
    if n == 0 || n > 64 || k > MAX_K || k == 0 || !instance.is_feasible() {
        return None;
    }
    let model = instance.model;

    let preds_mask: Vec<u64> = dag
        .nodes()
        .map(|v| {
            dag.preds(v)
                .iter()
                .fold(0u64, |m, p| m | (1u64 << p.index()))
        })
        .collect();
    let sinks_mask: u64 = dag
        .sinks()
        .iter()
        .fold(0u64, |m, s| m | (1u64 << s.index()));

    // Priority ceiling for the bucket representation: twice the Lemma 1
    // trivial upper bound covers every f-value the search can push.
    let ub = (model.g * (dag.max_in_degree() as u64 + 1))
        .saturating_add(model.compute)
        .saturating_mul(n as u64);
    let max_priority = ub
        .saturating_mul(2)
        .saturating_add(model.g.saturating_add(model.compute));

    Some(MppDomain {
        n,
        k,
        r: instance.r,
        compute: model.compute,
        g: model.g,
        preds_mask,
        sinks_mask,
        heur: AdmissibleHeuristic::for_mpp(instance),
        use_heuristic: config.heuristic,
        symmetry: config.symmetry,
        dominance: config.dominance,
        max_priority,
        partition: Partition::build(config.partition, dag, config.threads.clamp(1, MAX_THREADS)),
    })
}

#[allow(clippy::type_complexity)]
fn solve_inner(
    instance: &MppInstance,
    config: &SearchConfig,
) -> (
    Option<MppSolution>,
    SearchStats,
    StopReason,
    Vec<ShardStats>,
    PhaseStats,
) {
    if instance.dag.n() == 0 && instance.k > 0 && instance.k <= MAX_K {
        return (
            Some(MppSolution {
                total: 0,
                cost: Cost::zero(),
                strategy: MppStrategy::new(),
            }),
            SearchStats::default(),
            StopReason::Solved,
            Vec::new(),
            PhaseStats::default(),
        );
    }
    let Some(domain) = build_domain(instance, config) else {
        return (
            None,
            SearchStats::default(),
            StopReason::Unsupported,
            Vec::new(),
            PhaseStats::default(),
        );
    };
    let out = driver::search(&domain, config);
    let solution = out
        .best
        .map(|(total, path)| reconstruct(instance, path, total, config.symmetry));
    (solution, out.stats, out.reason, out.shards, out.phases)
}

/// Enumerates non-empty batches over per-processor option bitmasks:
/// each processor picks one set bit of its mask or idles. With
/// `distinct_vertices`, no vertex may repeat across the batch
/// (R1-M/R2-M set semantics; for stores a repeated vertex would be a
/// redundant double-write anyway). `budget` caps the total number of
/// acting processors (the hierarchical green-store slot budget;
/// `usize::MAX` otherwise). The caller provides the scratch `batch`
/// buffer so the enumeration allocates nothing.
///
/// With `maximal` (dominance pruning), only **inclusion-maximal**
/// batches survive: a batch where some idle processor could still be
/// assigned an option (unused, under the budget) is rejected, because
/// the extended batch keeps the same flat batch cost and reaches a
/// configuration that is a pointwise superset — any completion from the
/// partial state is simulated from the extended one (free lazy
/// evictions shed the extra red pebble whenever a slot is needed; extra
/// blue never hurts; the goal test is monotone coverage). Maximality is
/// checked at the leaf against the *final* used-vertex set, never
/// greedily per processor: with distinct vertices, forcing an early
/// processor to take a contended vertex would wrongly prune the batch
/// that gives it to a later processor, which no emitted batch
/// dominates. Pruned branches/leaves are counted into `suppressed`.
fn for_each_batch(
    options: &[u64],
    distinct_vertices: bool,
    maximal: bool,
    budget: usize,
    batch: &mut Vec<(usize, u32)>,
    suppressed: &mut u64,
    f: &mut impl FnMut(&[(usize, u32)]),
) {
    #[allow(clippy::too_many_arguments)]
    fn rec(
        options: &[u64],
        j: usize,
        distinct: bool,
        maximal: bool,
        budget: usize,
        used: u64,
        batch: &mut Vec<(usize, u32)>,
        suppressed: &mut u64,
        f: &mut impl FnMut(&[(usize, u32)]),
    ) {
        if j == options.len() {
            if batch.is_empty() {
                return;
            }
            if maximal && batch.len() < budget {
                for (jj, &opt) in options.iter().enumerate() {
                    if batch.iter().any(|&(b, _)| b == jj) {
                        continue;
                    }
                    let ext = if distinct { opt & !used } else { opt };
                    if ext != 0 {
                        // Idle processor jj could still act: this batch
                        // is dominated by the one that also assigns it.
                        *suppressed += 1;
                        return;
                    }
                }
            }
            f(batch);
            return;
        }
        let avail = if distinct {
            options[j] & !used
        } else {
            options[j]
        };
        let can_act = avail != 0 && batch.len() < budget;
        // Idle branch. Without distinct vertices an option can never be
        // consumed by another processor, so an idling processor that
        // could act now could still act at the leaf — cut the whole
        // subtree early instead of rejecting every leaf. Only valid
        // when the budget can never bind (a leaf that hits the budget
        // without this processor is maximal and must survive).
        if maximal && !distinct && can_act && budget >= options.len() {
            *suppressed += 1;
        } else {
            rec(
                options,
                j + 1,
                distinct,
                maximal,
                budget,
                used,
                batch,
                suppressed,
                f,
            );
        }
        if !can_act {
            return;
        }
        let mut m = avail;
        while m != 0 {
            let i = m.trailing_zeros();
            m &= m - 1;
            batch.push((j, i));
            rec(
                options,
                j + 1,
                distinct,
                maximal,
                budget,
                used | (1u64 << i),
                batch,
                suppressed,
                f,
            );
            batch.pop();
        }
    }
    batch.clear();
    rec(
        options,
        0,
        distinct_vertices,
        maximal,
        budget,
        0,
        batch,
        suppressed,
        f,
    );
}

/// Rebuilds the witness from the canonical-state parent chain.
///
/// With symmetry reduction each stored move is expressed in the frame of
/// its parent's canonical representative, while the canonical successor
/// is a *sorted* relabeling of the raw successor. Replaying forward, we
/// maintain the composed permutation `perm` (canonical index → concrete
/// processor id) and emit every move under concrete labels, so the
/// strategy validates against the ordinary rules.
fn reconstruct(
    instance: &MppInstance,
    path: Vec<(Key, PackedMove)>,
    total: u64,
    symmetry: bool,
) -> MppSolution {
    let k = instance.k;
    let mut perm = [0usize, 1, 2, 3];
    let mut cur = path.first().map_or(
        Key {
            reds: [0; MAX_K],
            blue: 0,
        },
        |&(p, _)| p,
    );
    let mut moves = Vec::with_capacity(path.len());
    for (parent, mv) in path {
        debug_assert_eq!(parent, cur);
        let (tag, pairs) = decode(mv, k);
        let concrete: Vec<(usize, NodeId)> = pairs
            .iter()
            .map(|&(j, i)| (perm[j], NodeId::new(i as usize)))
            .collect();
        moves.push(match tag {
            TAG_COMPUTE => MppMove::Compute(concrete),
            TAG_LOAD => MppMove::Load(concrete),
            TAG_STORE => MppMove::Store(concrete),
            _ => {
                let (p, v) = concrete[0];
                MppMove::Remove(Pebble::Red(p, v))
            }
        });
        let mut raw = parent;
        apply(&mut raw, tag, &pairs);
        let (next, pi) = canon_with_perm(raw, k, symmetry);
        let prev_perm = perm;
        for q in 0..k {
            perm[q] = prev_perm[pi[q]];
        }
        cur = next;
    }
    let strategy = MppStrategy::from_moves(moves);
    let cost = strategy
        .validate(instance)
        .expect("solver produced an invalid strategy");
    debug_assert_eq!(cost.total(instance.model), total);
    MppSolution {
        total,
        cost,
        strategy,
    }
}

fn iter_bits(mut mask: u64) -> impl Iterator<Item = u32> {
    std::iter::from_fn(move || {
        if mask == 0 {
            None
        } else {
            let i = mask.trailing_zeros();
            mask &= mask - 1;
            Some(i)
        }
    })
}

#[doc(hidden)]
pub mod probe {
    //! Test and benchmark hooks into the successor-generation kernel.
    //!
    //! Exposes the raw (symmetry-off) naive vs dominance-pruned
    //! successor sets along deterministic pseudo-random walks — the
    //! substrate of the successor-set equivalence property tests — and
    //! the micro-kernels (`canonicalize`, heuristic delta vs
    //! from-scratch, per-expansion successor generation) timed by the
    //! `solver_kernel` bench group. Not a public API.

    use super::*;
    use rbp_util::Rng;

    /// A raw successor snapshot: per-processor red masks, blue mask,
    /// and edge cost. Produced with symmetry canonicalization off so
    /// set comparisons see concrete processor labels.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
    pub struct Succ {
        /// Per-processor red masks (entries `k..` are zero).
        pub reds: [u64; MAX_K],
        /// Blue mask.
        pub blue: u64,
        /// Edge cost of the generating move.
        pub cost: u64,
    }

    fn expand_into(domain: &MppDomain, key: &Key, scratch: &mut MppScratch) -> Vec<Succ> {
        let mut out = Vec::new();
        domain.expand(key, scratch, &mut |k2, c, _mv, _hv| {
            out.push(Succ {
                reds: k2.reds,
                blue: k2.blue,
                cost: c,
            })
        });
        out
    }

    fn raw_config(dominance: bool) -> SearchConfig {
        SearchConfig {
            heuristic: false,
            symmetry: false,
            dominance,
            ..SearchConfig::default()
        }
    }

    /// Walks `steps` states from the root along a seeded random path
    /// (always stepping through a *naive* successor), returning the
    /// `(naive, pruned)` successor sets of every visited state.
    /// Panics on unsupported instances.
    #[must_use]
    pub fn successor_walk(
        instance: &MppInstance,
        seed: u64,
        steps: usize,
    ) -> Vec<(Vec<Succ>, Vec<Succ>)> {
        let naive = build_domain(instance, &raw_config(false)).expect("unsupported instance");
        let pruned = build_domain(instance, &raw_config(true)).expect("unsupported instance");
        let mut rng = Rng::new(seed);
        let mut scratch = MppScratch::default();
        let mut key = naive.root();
        let mut out = Vec::with_capacity(steps);
        for _ in 0..steps {
            let ns = expand_into(&naive, &key, &mut scratch);
            let ps = expand_into(&pruned, &key, &mut scratch);
            if ns.is_empty() {
                break;
            }
            let pick = rng.index(ns.len());
            let next = Key {
                reds: ns[pick].reds,
                blue: ns[pick].blue,
            };
            out.push((ns, ps));
            key = next;
        }
        out
    }

    /// Canonicalization micro-kernel: sorts `iters` pseudo-random
    /// 4-mask keys through the memoized path; returns a checksum so the
    /// work cannot be optimized away.
    #[must_use]
    pub fn canon_kernel(iters: u64, seed: u64) -> u64 {
        let mut rng = Rng::new(seed);
        let mut acc = 0u64;
        for _ in 0..iters {
            let mut reds = [
                rng.next_u64() & 0xff,
                rng.next_u64() & 0xff,
                rng.next_u64() & 0xff,
                rng.next_u64() & 0xff,
            ];
            if !is_sorted_desc(&reds) {
                sort_desc(&mut reds);
            }
            acc = acc.wrapping_add(reds[0]).rotate_left(7) ^ reds[3];
        }
        acc
    }

    /// Heuristic micro-kernel: evaluates the admissible bound for every
    /// successor along a seeded walk, either through the incremental
    /// delta path (`delta = true`) or from scratch, until `iters`
    /// evaluations have run. Returns a checksum of the bounds.
    #[must_use]
    pub fn heur_kernel(instance: &MppInstance, iters: u64, delta: bool, seed: u64) -> u64 {
        let domain = build_domain(instance, &raw_config(true)).expect("unsupported instance");
        let mut rng = Rng::new(seed);
        let mut scratch = MppScratch::default();
        let mut stats = PhaseStats::default();
        let mut key = domain.root();
        let mut acc = 0u64;
        let mut done = 0u64;
        while done < iters {
            let succs = expand_into(&domain, &key, &mut scratch);
            if succs.is_empty() {
                key = domain.root();
                continue;
            }
            let ctx = domain
                .heur
                .prepare(key.red_all(), key.blue, 0)
                .expect("MPP states are never dead");
            for s in &succs {
                let red_all = s.reds.iter().fold(0, |a, &b| a | b);
                let hv = if delta {
                    domain.heur.eval_delta(&ctx, red_all, s.blue, 0, &mut stats)
                } else {
                    domain.heur.eval(red_all, s.blue, 0)
                };
                acc = acc.rotate_left(5) ^ hv.unwrap_or(u64::MAX);
                done += 1;
                if done >= iters {
                    break;
                }
            }
            let pick = rng.index(succs.len());
            key = Key {
                reds: succs[pick].reds,
                blue: succs[pick].blue,
            };
        }
        acc
    }

    /// Successor-generation micro-kernel: expands states along a seeded
    /// walk (heuristic delta and canonicalization included, as in the
    /// real hot loop) until `iters` expansions have run; returns the
    /// total number of emitted successors.
    #[must_use]
    pub fn expand_kernel(instance: &MppInstance, iters: u64, dominance: bool, seed: u64) -> u64 {
        let domain = build_domain(
            instance,
            &SearchConfig {
                dominance,
                ..SearchConfig::default()
            },
        )
        .expect("unsupported instance");
        let mut rng = Rng::new(seed);
        let mut scratch = MppScratch::default();
        let mut key = domain.root();
        let mut emitted = 0u64;
        for _ in 0..iters {
            let succs = expand_into(&domain, &key, &mut scratch);
            emitted += succs.len() as u64;
            if succs.is_empty() {
                key = domain.root();
                continue;
            }
            let pick = rng.index(succs.len());
            key = Key {
                reds: succs[pick].reds,
                blue: succs[pick].blue,
            };
        }
        emitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbp_dag::{dag_from_edges, generators};

    fn limits() -> SolveLimits {
        SolveLimits::states(500_000)
    }

    #[test]
    fn single_node_costs_one_compute() {
        let d = dag_from_edges(1, &[]);
        let sol = solve(&MppInstance::new(&d, 2, 1, 3), limits()).unwrap();
        assert_eq!(sol.total, 1);
        assert_eq!(sol.cost.computes, 1);
    }

    #[test]
    fn two_independent_chains_parallelize_perfectly() {
        // Lemma 7 tightness shape: k=2 halves the chain cost exactly.
        // r=3 so the finished chain's sink can stay resident while the
        // other chain is computed (r=2 would force a store or recompute).
        let d = generators::independent_chains(2, 4);
        let k1 = solve(&MppInstance::new(&d, 1, 3, 2), limits()).unwrap();
        let k2 = solve(&MppInstance::new(&d, 2, 3, 2), limits()).unwrap();
        assert_eq!(k1.total, 8, "8 sequential computes");
        assert_eq!(k2.total, 4, "4 parallel compute steps");
    }

    #[test]
    fn communication_chain_needs_two_io_or_restart() {
        // 0 -> 1 with k=2: optimal is to do it all on one processor
        // (cost 2), never paying 2g to communicate.
        let d = dag_from_edges(2, &[(0, 1)]);
        let sol = solve(&MppInstance::new(&d, 2, 2, 5), limits()).unwrap();
        assert_eq!(sol.total, 2);
        assert_eq!(sol.cost.io_steps(), 0);
    }

    #[test]
    fn k1_matches_spp_with_compute_costs() {
        use crate::{solve_spp, SppInstance};
        let d = generators::binary_in_tree(4);
        for r in 3..=4 {
            let mpp = solve(&MppInstance::new(&d, 1, r, 2), limits()).unwrap();
            let spp =
                solve_spp(&SppInstance::with_compute(&d, r, 2), SolveLimits::default()).unwrap();
            assert_eq!(mpp.total, spp.total, "r={r}");
        }
    }

    #[test]
    fn more_processors_never_hurt_in_practical_comparison() {
        // Same r, larger k: OPT can only decrease (§5 practical case).
        let d = generators::binary_in_tree(4);
        let k1 = solve(&MppInstance::new(&d, 1, 3, 2), limits()).unwrap();
        let k2 = solve(&MppInstance::new(&d, 2, 3, 2), limits()).unwrap();
        assert!(k2.total <= k1.total);
    }

    #[test]
    fn witness_validates_and_batches() {
        let d = generators::independent_chains(2, 3);
        let inst = MppInstance::new(&d, 2, 3, 1);
        let sol = solve(&inst, limits()).unwrap();
        let cost = sol.strategy.validate(&inst).unwrap();
        assert_eq!(cost.total(inst.model), sol.total);
        assert_eq!(sol.total, 3);
        // The witness must use full batches to reach cost 3.
        assert!(sol
            .strategy
            .moves
            .iter()
            .all(|m| m.batch_size() == 2 || matches!(m, MppMove::Remove(_))));
    }

    #[test]
    fn infeasible_and_oversized_rejected() {
        let d = dag_from_edges(3, &[(0, 2), (1, 2)]);
        assert!(solve(&MppInstance::new(&d, 2, 2, 1), limits()).is_none());
        assert!(solve(&MppInstance::new(&d, 5, 3, 1), limits()).is_none());
        let big = generators::chain(65);
        assert!(solve(&MppInstance::new(&big, 2, 2, 1), limits()).is_none());
    }

    #[test]
    fn empty_dag_is_free() {
        let d = dag_from_edges(0, &[]);
        let sol = solve(&MppInstance::new(&d, 2, 1, 1), limits()).unwrap();
        assert_eq!(sol.total, 0);
    }

    #[test]
    fn state_budget_aborts() {
        let d = generators::grid(3, 3);
        let out = solve_with(
            &MppInstance::new(&d, 2, 3, 1),
            &SearchConfig::default().with_limits(SolveLimits::states(5)),
        );
        assert!(out.solution.is_none());
        assert_eq!(out.reason, StopReason::StateLimit);
    }

    #[test]
    fn deadline_aborts_with_distinct_reason() {
        let d = generators::grid(3, 3);
        let limits = SolveLimits::states(500_000).with_deadline(std::time::Duration::from_nanos(0));
        let out = solve_with(
            &MppInstance::new(&d, 2, 3, 1),
            &SearchConfig::default().with_limits(limits),
        );
        assert!(out.solution.is_none());
        assert_eq!(out.reason, StopReason::Deadline);
    }

    #[test]
    fn stop_reasons_for_trivial_and_unsupported() {
        let d = dag_from_edges(1, &[]);
        let out = solve_with(&MppInstance::new(&d, 2, 1, 3), &SearchConfig::default());
        assert_eq!(out.reason, StopReason::Solved);
        let big = generators::chain(65);
        let out = solve_with(&MppInstance::new(&big, 2, 2, 1), &SearchConfig::default());
        assert_eq!(out.reason, StopReason::Unsupported);
    }

    #[test]
    fn parallel_matches_sequential_cost() {
        for (d, k, r, g) in [
            (generators::grid(2, 3), 2, 3, 2),
            (generators::binary_in_tree(4), 2, 3, 1),
            (generators::independent_chains(2, 4), 2, 3, 2),
        ] {
            let inst = MppInstance::new(&d, k, r, g);
            let seq = solve_with(&inst, &SearchConfig::default());
            for threads in [2usize, 4] {
                let par = solve_with(&inst, &SearchConfig::default().with_threads(threads));
                let (s, p) = (seq.solution.as_ref().unwrap(), par.solution.unwrap());
                assert_eq!(s.total, p.total, "{} threads={threads}", d.name());
                p.strategy.validate(&inst).unwrap();
                assert_eq!(par.reason, StopReason::Solved);
                assert_eq!(par.shards.len(), threads);
                assert_eq!(par.stats.threads, threads as u64);
            }
        }
    }

    #[test]
    fn capacity_one_processors_make_progress() {
        // Regression for the R4-M guard: with r = 1 every processor is
        // at capacity after one compute; lazy eviction (generated at
        // `count >= r`, not `== r` only) must free the slot so the
        // sweep continues — including under symmetry canonicalization.
        let d = dag_from_edges(3, &[]);
        for symmetry in [false, true] {
            let cfg = SearchConfig {
                symmetry,
                ..SearchConfig::default()
            };
            let sol = solve_with(&MppInstance::new(&d, 2, 1, 1), &cfg)
                .solution
                .unwrap();
            // ceil(3/2) = 2 compute batches; only 2 red pebbles exist
            // in total, so the third sink must be stored blue: + g.
            assert_eq!(sol.total, 3, "symmetry={symmetry}");
            assert_eq!(sol.cost.computes, 2);
            assert_eq!(sol.cost.io_steps(), 1);
            sol.strategy
                .validate(&MppInstance::new(&d, 2, 1, 1))
                .unwrap();
        }
    }

    #[test]
    fn optimized_and_baseline_agree() {
        for (d, k, r, g) in [
            (generators::binary_in_tree(4), 2, 3, 2),
            (generators::diamond(2), 2, 3, 1),
            (generators::grid(2, 3), 3, 3, 2),
            (generators::independent_chains(3, 2), 3, 2, 3),
        ] {
            let inst = MppInstance::new(&d, k, r, g);
            let base = solve_with(&inst, &SearchConfig::baseline());
            let opt = solve_with(&inst, &SearchConfig::default());
            let (b, o) = (base.solution.unwrap(), opt.solution.unwrap());
            assert_eq!(b.total, o.total, "{} k={k} r={r} g={g}", d.name());
            o.strategy.validate(&inst).unwrap();
        }
    }

    #[test]
    fn symmetry_and_heuristic_shrink_the_search() {
        let d = generators::binary_in_tree(4);
        let inst = MppInstance::new(&d, 2, 3, 2);
        let base = solve_with(&inst, &SearchConfig::baseline());
        let opt = solve_with(&inst, &SearchConfig::default());
        assert_eq!(
            base.solution.unwrap().total,
            opt.solution.as_ref().unwrap().total
        );
        assert!(
            opt.stats.settled * 2 < base.stats.settled,
            "optimized settled {} vs baseline {}",
            opt.stats.settled,
            base.stats.settled
        );
    }

    #[test]
    fn witness_unpermutes_correctly_under_symmetry() {
        // A DAG forcing cross-processor traffic: the witness must remain
        // valid (consistent shade labels) after canonical reconstruction.
        let d = generators::grid(2, 2);
        let inst = MppInstance::new(&d, 2, 3, 1);
        let sol = solve(&inst, limits()).unwrap();
        let cost = sol.strategy.validate(&inst).unwrap();
        assert_eq!(cost.total(inst.model), sol.total);
    }
}
