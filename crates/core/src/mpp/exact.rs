//! Exact optimal MPP solver for small instances.
//!
//! Uniform-cost search over configurations `(R^1..R^k, B)` packed into
//! `u64` masks. Transitions are whole rule applications: all non-empty
//! batched selections of a single rule type are enumerated (each
//! processor independently acts or idles), so the solver exploits the
//! paper's one-cost-per-parallel-step semantics exactly.
//!
//! The same two normalizations as the SPP solver apply (blue pebbles are
//! never deleted; red deletions are generated lazily, only on a
//! processor at capacity). Additionally, batches are canonicalized by
//! ascending processor id — the rule semantics do not depend on pair
//! order.
//!
//! Complexity is brutal by design (the problem is NP-hard even for
//! 2-layer DAGs, Lemma 2): intended for `n ≤ ~10`, `k ≤ 4`.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use rbp_dag::NodeId;

use crate::{Cost, MppInstance, MppMove, MppStrategy, Pebble, SolveLimits};

const MAX_K: usize = 4;

/// An optimal solution found by [`solve`].
#[derive(Debug, Clone)]
pub struct MppSolution {
    /// The optimal total cost under the instance's cost model.
    pub total: u64,
    /// Tally of the optimal strategy's rule applications.
    pub cost: Cost,
    /// A witness strategy achieving `total`.
    pub strategy: MppStrategy,
}

#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct Key {
    reds: [u64; MAX_K],
    blue: u64,
}

/// Finds a minimum-total-cost MPP pebbling, or `None` if infeasible
/// (`r ≤ Δ_in`), too large (`n > 64` or `k > 4`), or out of budget.
#[must_use]
pub fn solve(instance: &MppInstance, limits: SolveLimits) -> Option<MppSolution> {
    let dag = instance.dag;
    let n = dag.n();
    let k = instance.k;
    if n > 64 || k > MAX_K || k == 0 {
        return None;
    }
    if n == 0 {
        return Some(MppSolution {
            total: 0,
            cost: Cost::zero(),
            strategy: MppStrategy::new(),
        });
    }
    if !instance.is_feasible() {
        return None;
    }
    let r = instance.r;
    let model = instance.model;

    let preds_mask: Vec<u64> = dag
        .nodes()
        .map(|v| dag.preds(v).iter().fold(0u64, |m, p| m | (1u64 << p.index())))
        .collect();
    let sinks_mask: u64 = dag
        .sinks()
        .iter()
        .fold(0u64, |m, s| m | (1u64 << s.index()));

    let start = Key {
        reds: [0; MAX_K],
        blue: 0,
    };
    let mut dist: HashMap<Key, u64> = HashMap::new();
    let mut parent: HashMap<Key, (Key, MppMove)> = HashMap::new();
    let mut heap: BinaryHeap<(Reverse<u64>, Key)> = BinaryHeap::new();
    dist.insert(start, 0);
    heap.push((Reverse(0), start));
    let mut settled = 0usize;

    while let Some((Reverse(d), key)) = heap.pop() {
        if dist.get(&key).copied() != Some(d) {
            continue;
        }
        let red_all = key.reds.iter().fold(0u64, |a, &b| a | b);
        if sinks_mask & !(red_all | key.blue) == 0 {
            return Some(reconstruct(instance, &parent, key, d));
        }
        settled += 1;
        if settled > limits.max_states {
            return None;
        }

        let push = |parent_map: &mut HashMap<Key, (Key, MppMove)>,
                        dist_map: &mut HashMap<Key, u64>,
                        heap_ref: &mut BinaryHeap<(Reverse<u64>, Key)>,
                        nk: Key,
                        nd: u64,
                        mv: MppMove| {
            if dist_map.get(&nk).is_none_or(|&old| nd < old) {
                dist_map.insert(nk, nd);
                parent_map.insert(nk, (key, mv));
                heap_ref.push((Reverse(nd), nk));
            }
        };

        // --- R4-M: lazy red eviction on full processors (cost 0). ---
        for j in 0..k {
            if key.reds[j].count_ones() as usize == r {
                for i in iter_bits(key.reds[j]) {
                    let mut nk = key;
                    nk.reds[j] &= !(1u64 << i);
                    push(
                        &mut parent,
                        &mut dist,
                        &mut heap,
                        nk,
                        d,
                        MppMove::Remove(Pebble::Red(j, NodeId::new(i as usize))),
                    );
                }
            }
        }

        // --- R3-M: batched computes. ---
        // Options per processor: None (idle) or an eligible node.
        let compute_opts: Vec<Vec<u32>> = (0..k)
            .map(|j| {
                if key.reds[j].count_ones() as usize >= r {
                    return Vec::new();
                }
                (0..n as u32)
                    .filter(|&i| {
                        let b = 1u64 << i;
                        key.reds[j] & b == 0 && preds_mask[i as usize] & !key.reds[j] == 0
                    })
                    .collect()
            })
            .collect();
        for_each_batch(&compute_opts, false, &mut |batch| {
            let mut nk = key;
            for &(j, i) in batch {
                nk.reds[j] |= 1u64 << i;
            }
            let mv = MppMove::Compute(
                batch
                    .iter()
                    .map(|&(j, i)| (j, NodeId::new(i as usize)))
                    .collect(),
            );
            push(&mut parent, &mut dist, &mut heap, nk, d + model.compute, mv);
        });

        // --- R2-M: batched loads (distinct vertices). ---
        let load_opts: Vec<Vec<u32>> = (0..k)
            .map(|j| {
                if key.reds[j].count_ones() as usize >= r {
                    return Vec::new();
                }
                iter_bits(key.blue & !key.reds[j]).collect()
            })
            .collect();
        for_each_batch(&load_opts, true, &mut |batch| {
            let mut nk = key;
            for &(j, i) in batch {
                nk.reds[j] |= 1u64 << i;
            }
            let mv = MppMove::Load(
                batch
                    .iter()
                    .map(|&(j, i)| (j, NodeId::new(i as usize)))
                    .collect(),
            );
            push(&mut parent, &mut dist, &mut heap, nk, d + model.g, mv);
        });

        // --- R1-M: batched stores (distinct vertices). ---
        let store_opts: Vec<Vec<u32>> = (0..k)
            .map(|j| iter_bits(key.reds[j] & !key.blue).collect())
            .collect();
        for_each_batch(&store_opts, true, &mut |batch| {
            let mut nk = key;
            for &(_, i) in batch {
                nk.blue |= 1u64 << i;
            }
            let mv = MppMove::Store(
                batch
                    .iter()
                    .map(|&(j, i)| (j, NodeId::new(i as usize)))
                    .collect(),
            );
            push(&mut parent, &mut dist, &mut heap, nk, d + model.g, mv);
        });
    }
    None
}

/// Enumerates all non-empty batches: each processor picks one of its
/// options or idles. With `distinct_vertices`, no vertex may repeat
/// across the batch (R1-M/R2-M set semantics; for stores a repeated
/// vertex would be a redundant double-write anyway).
fn for_each_batch(
    options: &[Vec<u32>],
    distinct_vertices: bool,
    f: &mut impl FnMut(&[(usize, u32)]),
) {
    fn rec(
        options: &[Vec<u32>],
        j: usize,
        distinct: bool,
        batch: &mut Vec<(usize, u32)>,
        used: &mut u64,
        f: &mut impl FnMut(&[(usize, u32)]),
    ) {
        if j == options.len() {
            if !batch.is_empty() {
                f(batch);
            }
            return;
        }
        // Idle.
        rec(options, j + 1, distinct, batch, used, f);
        // Act.
        for &i in &options[j] {
            let b = 1u64 << i;
            if distinct && *used & b != 0 {
                continue;
            }
            *used |= b;
            batch.push((j, i));
            rec(options, j + 1, distinct, batch, used, f);
            batch.pop();
            *used &= !b;
        }
    }
    let mut batch = Vec::with_capacity(options.len());
    let mut used = 0u64;
    rec(options, 0, distinct_vertices, &mut batch, &mut used, f);
}

fn reconstruct(
    instance: &MppInstance,
    parent: &HashMap<Key, (Key, MppMove)>,
    mut key: Key,
    total: u64,
) -> MppSolution {
    let mut moves = Vec::new();
    while let Some((prev, mv)) = parent.get(&key) {
        moves.push(mv.clone());
        key = *prev;
    }
    moves.reverse();
    let strategy = MppStrategy::from_moves(moves);
    let cost = strategy
        .validate(instance)
        .expect("solver produced an invalid strategy");
    debug_assert_eq!(cost.total(instance.model), total);
    MppSolution {
        total,
        cost,
        strategy,
    }
}

fn iter_bits(mut mask: u64) -> impl Iterator<Item = u32> {
    std::iter::from_fn(move || {
        if mask == 0 {
            None
        } else {
            let i = mask.trailing_zeros();
            mask &= mask - 1;
            Some(i)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbp_dag::{dag_from_edges, generators};

    fn limits() -> SolveLimits {
        SolveLimits {
            max_states: 500_000,
        }
    }

    #[test]
    fn single_node_costs_one_compute() {
        let d = dag_from_edges(1, &[]);
        let sol = solve(&MppInstance::new(&d, 2, 1, 3), limits()).unwrap();
        assert_eq!(sol.total, 1);
        assert_eq!(sol.cost.computes, 1);
    }

    #[test]
    fn two_independent_chains_parallelize_perfectly() {
        // Lemma 7 tightness shape: k=2 halves the chain cost exactly.
        // r=3 so the finished chain's sink can stay resident while the
        // other chain is computed (r=2 would force a store or recompute).
        let d = generators::independent_chains(2, 4);
        let k1 = solve(&MppInstance::new(&d, 1, 3, 2), limits()).unwrap();
        let k2 = solve(&MppInstance::new(&d, 2, 3, 2), limits()).unwrap();
        assert_eq!(k1.total, 8, "8 sequential computes");
        assert_eq!(k2.total, 4, "4 parallel compute steps");
    }

    #[test]
    fn communication_chain_needs_two_io_or_restart() {
        // 0 -> 1 with k=2: optimal is to do it all on one processor
        // (cost 2), never paying 2g to communicate.
        let d = dag_from_edges(2, &[(0, 1)]);
        let sol = solve(&MppInstance::new(&d, 2, 2, 5), limits()).unwrap();
        assert_eq!(sol.total, 2);
        assert_eq!(sol.cost.io_steps(), 0);
    }

    #[test]
    fn k1_matches_spp_with_compute_costs() {
        use crate::{solve_spp, SppInstance};
        let d = generators::binary_in_tree(4);
        for r in 3..=4 {
            let mpp = solve(&MppInstance::new(&d, 1, r, 2), limits()).unwrap();
            let spp = solve_spp(
                &SppInstance::with_compute(&d, r, 2),
                SolveLimits::default(),
            )
            .unwrap();
            assert_eq!(mpp.total, spp.total, "r={r}");
        }
    }

    #[test]
    fn more_processors_never_hurt_in_practical_comparison() {
        // Same r, larger k: OPT can only decrease (§5 practical case).
        let d = generators::binary_in_tree(4);
        let k1 = solve(&MppInstance::new(&d, 1, 3, 2), limits()).unwrap();
        let k2 = solve(&MppInstance::new(&d, 2, 3, 2), limits()).unwrap();
        assert!(k2.total <= k1.total);
    }

    #[test]
    fn witness_validates_and_batches() {
        let d = generators::independent_chains(2, 3);
        let inst = MppInstance::new(&d, 2, 2, 1);
        let sol = solve(&inst, limits()).unwrap();
        let cost = sol.strategy.validate(&inst).unwrap();
        assert_eq!(cost.total(inst.model), sol.total);
        assert_eq!(sol.total, 3);
        // The witness must use full batches to reach cost 3.
        assert!(sol
            .strategy
            .moves
            .iter()
            .all(|m| m.batch_size() == 2 || matches!(m, MppMove::Remove(_))));
    }

    #[test]
    fn infeasible_and_oversized_rejected() {
        let d = dag_from_edges(3, &[(0, 2), (1, 2)]);
        assert!(solve(&MppInstance::new(&d, 2, 2, 1), limits()).is_none());
        assert!(solve(&MppInstance::new(&d, 5, 3, 1), limits()).is_none());
        let big = generators::chain(65);
        assert!(solve(&MppInstance::new(&big, 2, 2, 1), limits()).is_none());
    }

    #[test]
    fn empty_dag_is_free() {
        let d = dag_from_edges(0, &[]);
        let sol = solve(&MppInstance::new(&d, 2, 1, 1), limits()).unwrap();
        assert_eq!(sol.total, 0);
    }

    #[test]
    fn state_budget_aborts() {
        let d = generators::grid(3, 3);
        assert!(solve(
            &MppInstance::new(&d, 2, 3, 1),
            SolveLimits { max_states: 5 }
        )
        .is_none());
    }
}
