//! Strategy post-optimization: batching adjacent moves.
//!
//! MPP charges one unit per *rule application*, however many pebbles the
//! shaded selection moves. A strategy that issues single-pebble moves
//! back to back therefore leaves free cost on the table whenever the
//! moves could have formed one batch. [`batchify`] merges runs of
//! same-type moves into maximal legal batches:
//!
//! - a move joins the current batch only if the *combined* batch is
//!   legal against the batch's pre-state (this is exactly the rule
//!   semantics — all conditions are checked before any pebble moves, so
//!   a load that depends on the preceding store in the run must not be
//!   merged into it);
//! - removals pass through freely (they are free and do not break
//!   batches of the same type around them is *not* assumed — they flush
//!   the batch, conservatively preserving order).
//!
//! The result validates against the same instance and never costs more;
//! the cost strictly drops whenever any merge happened.

use crate::mpp::strategy::apply_checked;
use crate::{Configuration, MppInstance, MppMove, MppStrategy};

/// Merges adjacent same-type moves into maximal legal batches. The input
/// must be valid for `instance`; the output is valid and costs at most
/// as much.
#[must_use]
pub fn batchify(instance: &MppInstance, strategy: &MppStrategy) -> MppStrategy {
    let mut out: Vec<MppMove> = Vec::with_capacity(strategy.moves.len());
    // Configuration *before* the currently open batch.
    let mut pre = Configuration::initial(instance.dag, instance.k);
    // Configuration after everything flushed so far plus the open batch.
    let mut cur = pre.clone();
    let mut open: Option<MppMove> = None;

    for mv in &strategy.moves {
        // Attempt to extend the open batch with a same-type move.
        if let Some(o) = &open {
            if let Some(candidate) = try_merge(o, mv) {
                let mut trial = pre.clone();
                if apply_checked(instance, &mut trial, &candidate).is_ok() {
                    open = Some(candidate);
                    cur = trial;
                    continue;
                }
            }
        }
        // Flush the open batch.
        if let Some(o) = open.take() {
            out.push(o);
            pre = cur.clone();
        }
        apply_checked(instance, &mut cur, mv).expect("input strategy must be valid");
        if matches!(mv, MppMove::Remove(_)) {
            out.push(mv.clone());
            pre = cur.clone();
        } else {
            open = Some(mv.clone());
        }
    }
    if let Some(o) = open.take() {
        out.push(o);
    }
    MppStrategy::from_moves(out)
}

/// Concatenated batch when both moves apply the same costed rule.
fn try_merge(a: &MppMove, b: &MppMove) -> Option<MppMove> {
    match (a, b) {
        (MppMove::Compute(x), MppMove::Compute(y)) => {
            Some(MppMove::Compute([x.as_slice(), y.as_slice()].concat()))
        }
        (MppMove::Load(x), MppMove::Load(y)) => {
            Some(MppMove::Load([x.as_slice(), y.as_slice()].concat()))
        }
        (MppMove::Store(x), MppMove::Store(y)) => {
            Some(MppMove::Store([x.as_slice(), y.as_slice()].concat()))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{validate_mpp, MppSimulator};
    use rbp_dag::{dag_from_edges, generators, NodeId};

    fn v(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn independent_singles_merge() {
        // Four independent sources computed one at a time on two procs:
        // batchify folds them into two parallel steps.
        let dag = dag_from_edges(4, &[]);
        let inst = MppInstance::new(&dag, 2, 2, 1);
        let mut sim = MppSimulator::new(inst);
        sim.compute(vec![(0, v(0))]).unwrap();
        sim.compute(vec![(1, v(1))]).unwrap();
        sim.compute(vec![(0, v(2))]).unwrap();
        sim.compute(vec![(1, v(3))]).unwrap();
        let run = sim.finish().unwrap();
        assert_eq!(run.cost.computes, 4);

        let opt = batchify(&inst, &run.strategy);
        let cost = validate_mpp(&inst, &opt.moves).unwrap();
        assert_eq!(cost.computes, 2, "pairs of singles became batches");
    }

    #[test]
    fn dependent_io_does_not_merge() {
        // store(p0, v0) then load(p1, v0): the load needs the store's
        // effect, so they must stay separate steps.
        let dag = dag_from_edges(2, &[(0, 1)]);
        let inst = MppInstance::new(&dag, 2, 2, 3);
        let mut sim = MppSimulator::new(inst);
        sim.compute(vec![(0, v(0))]).unwrap();
        sim.store(vec![(0, v(0))]).unwrap();
        sim.load(vec![(1, v(0))]).unwrap();
        sim.compute(vec![(1, v(1))]).unwrap();
        let run = sim.finish().unwrap();
        let opt = batchify(&inst, &run.strategy);
        let cost = validate_mpp(&inst, &opt.moves).unwrap();
        assert_eq!(cost, run.cost, "nothing mergeable here");
    }

    #[test]
    fn dependent_computes_do_not_merge() {
        // compute v0 then compute v1 (child of v0) on the same proc: the
        // second needs the first's pebble, and the same processor cannot
        // appear twice in a selection anyway.
        let dag = dag_from_edges(2, &[(0, 1)]);
        let inst = MppInstance::new(&dag, 1, 2, 1);
        let mut sim = MppSimulator::new(inst);
        sim.compute(vec![(0, v(0))]).unwrap();
        sim.compute(vec![(0, v(1))]).unwrap();
        let run = sim.finish().unwrap();
        let opt = batchify(&inst, &run.strategy);
        assert_eq!(opt.moves.len(), 2);
    }

    #[test]
    fn baseline_improves_and_stays_valid_on_real_dags() {
        use crate::CostModel;
        for dag in [
            generators::fft(3),
            generators::grid(4, 4),
            generators::independent_chains(4, 6),
        ] {
            // The per-node baseline is single-move heavy — prime target.
            let inst = MppInstance::new(&dag, 4, dag.max_in_degree() + 2, 3);
            // Build the baseline inline (avoid a dev-dependency cycle on
            // rbp-schedulers): round-robin load/compute/store.
            let topo = dag.topo();
            let mut sim = MppSimulator::new(inst);
            for (i, &node) in topo.order().iter().enumerate() {
                let p = i % inst.k;
                for &u in dag.preds(node) {
                    sim.load(vec![(p, u)]).unwrap();
                }
                sim.compute(vec![(p, node)]).unwrap();
                sim.store(vec![(p, node)]).unwrap();
                for &u in dag.preds(node) {
                    sim.remove_red(p, u).unwrap();
                }
                sim.remove_red(p, node).unwrap();
            }
            let run = sim.finish().unwrap();
            let opt = batchify(&inst, &run.strategy);
            let cost = validate_mpp(&inst, &opt.moves).unwrap();
            let model = CostModel::mpp(3);
            assert!(cost.total(model) <= run.cost.total(model), "{}", dag.name());
        }
    }

    #[test]
    fn empty_strategy_is_noop() {
        let dag = dag_from_edges(0, &[]);
        let inst = MppInstance::new(&dag, 2, 1, 1);
        let opt = batchify(&inst, &MppStrategy::new());
        assert!(opt.is_empty());
    }

    #[test]
    fn batchify_is_idempotent() {
        let dag = generators::independent_chains(2, 4);
        let inst = MppInstance::new(&dag, 2, 2, 2);
        let mut sim = MppSimulator::new(inst);
        for i in 0..4u32 {
            sim.compute(vec![(0, v(i))]).unwrap();
            sim.compute(vec![(1, v(i + 4))]).unwrap();
            if i > 0 {
                sim.remove_red(0, v(i - 1)).unwrap();
                sim.remove_red(1, v(i + 3)).unwrap();
            }
        }
        let run = sim.finish().unwrap();
        let once = batchify(&inst, &run.strategy);
        let twice = batchify(&inst, &once);
        assert_eq!(once, twice);
    }
}
