//! Packed state interning arena for the exact solvers.
//!
//! Each search shard owns one [`StateArena`]: canonical configurations
//! are bit-packed into a shared `Vec<u64>` word store (a bump arena with
//! a fixed per-key word stride), per-state search metadata
//! (`dist`/`parent`/`move`) lives in a parallel `Vec<Meta>`, and an
//! open-addressing hash table maps packed keys to 32-bit arena indices.
//! Compared to the previous `HashMap<Key, Entry<Key>>` closed set this
//! stores each key once (no clone into the `Entry`), replaces the owned
//! parent key by an 8-byte global id, and keeps the table itself at four
//! bytes per slot.
//!
//! Global ids (`gid`) identify a state across shards as
//! `shard << 32 | arena_index`; the root marks itself with a self-loop
//! parent so path reconstruction can stop without a sentinel value.

use crate::search::PackedMove;

/// Upper bound on packed-key width, in 64-bit words.
///
/// The widest key the solvers produce is the three-level hierarchical
/// configuration at `k = 4` processors over `n = 64` nodes: six 64-bit
/// masks (four red sets plus the green and blue sets). Cross-shard
/// messages embed keys inline at this width.
pub const MAX_KEY_WORDS: usize = 6;

/// Empty slot marker in the open-addressing table.
const EMPTY: u32 = u32::MAX;

/// Per-state search metadata, stored parallel to the packed key words.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Meta {
    /// Best known distance from the root.
    pub dist: u64,
    /// Global id of the predecessor on the best known path (self-loop
    /// for the root).
    pub parent: u64,
    /// Move applied on the `parent -> this` edge.
    pub mv: PackedMove,
}

/// Builds a global state id from a shard index and an arena index.
#[inline]
pub(crate) fn gid(shard: usize, idx: u32) -> u64 {
    ((shard as u64) << 32) | u64::from(idx)
}

/// Shard component of a global state id.
#[inline]
pub(crate) fn gid_shard(g: u64) -> usize {
    (g >> 32) as usize
}

/// Arena-index component of a global state id.
#[inline]
pub(crate) fn gid_idx(g: u64) -> u32 {
    g as u32
}

/// Hashes a packed key with the vendored Fx mixing step plus a murmur3
/// finalizer so both the low bits (table slot) and the high bits (shard
/// selection via [`shard_of`]) are well distributed.
#[inline]
pub(crate) fn hash_words(words: &[u64]) -> u64 {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
    let mut h = 0u64;
    for &w in words {
        h = (h.rotate_left(5) ^ w).wrapping_mul(SEED);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h
}

/// Maps a key hash to its owning shard with the fastrange reduction
/// (consumes the high bits, decorrelated from the table-slot low bits).
#[inline]
pub(crate) fn shard_of(hash: u64, shards: usize) -> usize {
    ((u128::from(hash) * shards as u128) >> 64) as usize
}

/// Number of 64-bit words needed to pack `fields` fields of `bits` bits.
#[inline]
pub fn words_for(fields: usize, bits: usize) -> usize {
    (fields * bits).div_ceil(64).max(1)
}

/// Packs `fields` (each at most `bits` bits wide) into `out`,
/// little-endian within and across words. `out` must already be sized
/// by [`words_for`]; it is fully overwritten.
#[inline]
pub fn pack_fields(fields: &[u64], bits: usize, out: &mut [u64]) {
    debug_assert!((1..=64).contains(&bits));
    for w in out.iter_mut() {
        *w = 0;
    }
    let mut bit = 0usize;
    for &f in fields {
        debug_assert!(bits == 64 || f >> bits == 0);
        let w = bit / 64;
        let off = bit % 64;
        out[w] |= f << off;
        if off + bits > 64 {
            // `off > 0` here because `bits <= 64`, so the shift is valid.
            out[w + 1] |= f >> (64 - off);
        }
        bit += bits;
    }
}

/// Inverse of [`pack_fields`]: extracts `fields.len()` fields of `bits`
/// bits each from `words`.
#[inline]
pub fn unpack_fields(words: &[u64], bits: usize, fields: &mut [u64]) {
    debug_assert!((1..=64).contains(&bits));
    let mask = if bits == 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    };
    let mut bit = 0usize;
    for f in fields.iter_mut() {
        let w = bit / 64;
        let off = bit % 64;
        let mut v = words[w] >> off;
        if off + bits > 64 {
            v |= words[w + 1] << (64 - off);
        }
        *f = v & mask;
        bit += bits;
    }
}

/// Interning arena: packed key words + metadata + index table.
#[derive(Debug)]
pub(crate) struct StateArena {
    /// Words per key (fixed stride into `words`).
    kw: usize,
    /// Bump store of packed keys, `kw` words per state.
    words: Vec<u64>,
    /// Search metadata, parallel to the key store.
    meta: Vec<Meta>,
    /// Open-addressing table of arena indices (`EMPTY` = free slot).
    table: Vec<u32>,
    /// `table.len() - 1` (table length is a power of two).
    mask: usize,
}

impl StateArena {
    /// Fresh arena for keys of `kw` words.
    pub fn new(kw: usize) -> Self {
        assert!((1..=MAX_KEY_WORDS).contains(&kw));
        let cap = 1 << 10;
        StateArena {
            kw,
            words: Vec::new(),
            meta: Vec::new(),
            table: vec![EMPTY; cap],
            mask: cap - 1,
        }
    }

    /// Number of interned states.
    pub fn len(&self) -> usize {
        self.meta.len()
    }

    /// Packed key words of state `idx`.
    #[inline]
    pub fn key_words(&self, idx: u32) -> &[u64] {
        let s = idx as usize * self.kw;
        &self.words[s..s + self.kw]
    }

    /// Metadata of state `idx`.
    #[inline]
    pub fn meta(&self, idx: u32) -> Meta {
        self.meta[idx as usize]
    }

    /// Bytes currently reserved by the arena (key store + metadata +
    /// table), counting capacity rather than length so the figure
    /// reflects the true allocation.
    pub fn bytes(&self) -> u64 {
        (self.words.capacity() * 8
            + self.meta.capacity() * std::mem::size_of::<Meta>()
            + self.table.capacity() * 4) as u64
    }

    /// Interns `key` (hash precomputed via [`hash_words`]) if new, and
    /// updates its metadata when `dist` improves the stored distance.
    /// Returns the arena index and whether the state's distance was
    /// created or improved (i.e. the caller should enqueue it).
    #[inline]
    pub fn relax(
        &mut self,
        key: &[u64],
        hash: u64,
        dist: u64,
        parent: u64,
        mv: PackedMove,
    ) -> (u32, bool) {
        debug_assert_eq!(key.len(), self.kw);
        let mut slot = hash as usize & self.mask;
        loop {
            let e = self.table[slot];
            if e == EMPTY {
                let idx = self.meta.len() as u32;
                self.words.extend_from_slice(key);
                self.meta.push(Meta { dist, parent, mv });
                self.table[slot] = idx;
                // Keep the load factor at or below 1/2.
                if self.meta.len() * 2 >= self.table.len() {
                    self.grow();
                }
                return (idx, true);
            }
            if self.key_words(e) == key {
                let m = &mut self.meta[e as usize];
                if dist < m.dist {
                    m.dist = dist;
                    m.parent = parent;
                    m.mv = mv;
                    return (e, true);
                }
                return (e, false);
            }
            slot = (slot + 1) & self.mask;
        }
    }

    /// Doubles the table, rehashing every interned key.
    fn grow(&mut self) {
        let ncap = self.table.len() * 2;
        let nmask = ncap - 1;
        let mut nt = vec![EMPTY; ncap];
        for idx in 0..self.meta.len() as u32 {
            let h = hash_words(self.key_words(idx));
            let mut slot = h as usize & nmask;
            while nt[slot] != EMPTY {
                slot = (slot + 1) & nmask;
            }
            nt[slot] = idx;
        }
        self.table = nt;
        self.mask = nmask;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_roundtrip_various_widths() {
        for bits in [1usize, 5, 7, 13, 31, 33, 63, 64] {
            let mask = if bits == 64 {
                u64::MAX
            } else {
                (1u64 << bits) - 1
            };
            let fields: Vec<u64> = (0..9u64)
                .map(|i| (i.wrapping_mul(0x9e37_79b9_7f4a_7c15)) & mask)
                .collect();
            let mut words = vec![0u64; words_for(fields.len(), bits)];
            pack_fields(&fields, bits, &mut words);
            let mut back = vec![0u64; fields.len()];
            unpack_fields(&words, bits, &mut back);
            assert_eq!(fields, back, "width {bits}");
        }
    }

    #[test]
    fn gid_roundtrip() {
        let g = gid(7, 123_456);
        assert_eq!(gid_shard(g), 7);
        assert_eq!(gid_idx(g), 123_456);
    }

    #[test]
    fn shard_of_covers_range() {
        for shards in [1usize, 2, 3, 8] {
            let mut seen = vec![false; shards];
            for i in 0..4096u64 {
                let s = shard_of(hash_words(&[i]), shards);
                assert!(s < shards);
                seen[s] = true;
            }
            assert!(seen.iter().all(|&b| b), "{shards} shards all hit");
        }
    }

    #[test]
    fn relax_interns_updates_and_grows() {
        let mut a = StateArena::new(2);
        // Insert enough distinct keys to force several table growths.
        for i in 0..5000u64 {
            let key = [i, i ^ 0xdead];
            let (idx, improved) = a.relax(&key, hash_words(&key), i + 10, 0, 0);
            assert!(improved);
            assert_eq!(idx as u64, i);
        }
        assert_eq!(a.len(), 5000);
        // Re-relax with a worse distance: no change.
        let key = [42u64, 42 ^ 0xdead];
        let (idx, improved) = a.relax(&key, hash_words(&key), 99, 1, 2);
        assert_eq!(idx, 42);
        assert!(!improved);
        assert_eq!(a.meta(42).dist, 52);
        // Better distance: metadata updated in place.
        let (idx, improved) = a.relax(&key, hash_words(&key), 3, gid(1, 7), 9);
        assert_eq!(idx, 42);
        assert!(improved);
        let m = a.meta(42);
        assert_eq!((m.dist, m.parent, m.mv), (3, gid(1, 7), 9));
        // Keys survive growth.
        for i in 0..5000u64 {
            assert_eq!(a.key_words(i as u32), &[i, i ^ 0xdead]);
        }
        assert!(a.bytes() > 0);
    }
}
