//! SPP game state: which nodes hold red/blue pebbles.

use rbp_dag::{Dag, NodeId, NodeSet};

/// A single-processor pebbling state.
///
/// `red` is the content of fast memory, `blue` of slow memory. `computed`
/// tracks which nodes have ever been computed (rule R3-S), which the
/// one-shot variant restricts and statistics report on; it never shrinks.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SppState {
    /// Nodes holding a red pebble (fast memory).
    pub red: NodeSet,
    /// Nodes holding a blue pebble (slow memory).
    pub blue: NodeSet,
    /// Nodes computed at least once so far.
    pub computed: NodeSet,
}

impl SppState {
    /// The initial (empty) state for `dag` (base boundary convention).
    #[must_use]
    pub fn initial(dag: &Dag) -> Self {
        SppState {
            red: dag.empty_set(),
            blue: dag.empty_set(),
            computed: dag.empty_set(),
        }
    }

    /// The initial state under a variant's boundary convention: with
    /// `sources_start_blue`, every source begins with a blue pebble.
    #[must_use]
    pub fn initial_for(dag: &Dag, variant: crate::SppVariant) -> Self {
        let mut s = Self::initial(dag);
        if variant.sources_start_blue {
            for src in dag.sources() {
                s.blue.insert(src);
            }
        }
        s
    }

    /// Number of red pebbles in use.
    #[must_use]
    pub fn red_count(&self) -> usize {
        self.red.len()
    }

    /// Whether `v` holds any pebble.
    #[must_use]
    pub fn has_pebble(&self, v: NodeId) -> bool {
        self.red.contains(v) || self.blue.contains(v)
    }

    /// Whether the state is terminal for `dag`: every sink holds a pebble.
    #[must_use]
    pub fn is_terminal(&self, dag: &Dag) -> bool {
        dag.sinks().into_iter().all(|s| self.has_pebble(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbp_dag::dag_from_edges;

    #[test]
    fn initial_state_is_empty() {
        let d = dag_from_edges(3, &[(0, 1), (1, 2)]);
        let s = SppState::initial(&d);
        assert_eq!(s.red_count(), 0);
        assert!(!s.has_pebble(NodeId(0)));
        assert!(!s.is_terminal(&d));
    }

    #[test]
    fn terminal_accepts_red_or_blue_on_sinks() {
        let d = dag_from_edges(3, &[(0, 2), (1, 2)]);
        let mut s = SppState::initial(&d);
        s.red.insert(NodeId(2));
        assert!(s.is_terminal(&d));
        let mut s2 = SppState::initial(&d);
        s2.blue.insert(NodeId(2));
        assert!(s2.is_terminal(&d));
    }

    #[test]
    fn empty_dag_is_immediately_terminal() {
        let d = dag_from_edges(0, &[]);
        assert!(SppState::initial(&d).is_terminal(&d));
    }
}
