//! Single-processor red-blue pebbling (SPP), the classical game of
//! Hong & Kung, plus the variants catalogued in §3.1 of the paper.
//!
//! A game instance is a DAG, a fast-memory capacity `r`, a [`CostModel`],
//! and a [`SppVariant`]. A strategy is a sequence of [`SppMove`]s; the
//! validator in [`strategy`] replays it, enforcing all rules, and returns
//! the rule-application tally.

pub mod exact;
pub mod moves;
pub mod oneshot_zero;
pub mod state;
pub mod strategy;

pub use exact::{solve as solve_spp, solve_with as solve_spp_with, SolveLimits, SppSolution};
pub use moves::SppMove;
pub use oneshot_zero::{zero_io_order, zero_io_pebbling_exists};
pub use state::SppState;
pub use strategy::{validate, SppError, SppErrorKind, SppStrategy};

use rbp_dag::Dag;

use crate::CostModel;

/// Which SPP variant is being played (§3.1).
///
/// The named constructors cover the variants the paper discusses:
///
/// ```
/// use rbp_core::SppVariant;
///
/// let base = SppVariant::base();          // recompute + delete allowed
/// assert!(!base.one_shot && !base.no_delete);
///
/// let os = SppVariant::one_shot();        // each node computed at most once
/// assert!(os.one_shot);
///
/// let nd = SppVariant::no_delete();       // R4-S forbidden
/// assert!(nd.no_delete);
///
/// let hk = SppVariant::hong_kung();       // inputs start blue, outputs end blue
/// assert!(hk.sources_start_blue && hk.sinks_need_blue);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SppVariant {
    /// One-shot SPP: rule R3-S may be applied at most once per node.
    pub one_shot: bool,
    /// No-deletion SPP: rule R4-S is forbidden.
    pub no_delete: bool,
    /// Hong–Kung boundary convention: source nodes start with a blue
    /// pebble (inputs live in slow memory), so sources are *loaded*, not
    /// computed. §3.1 notes this variant reduces to the base one with
    /// simple tricks; we support it natively.
    pub sources_start_blue: bool,
    /// Hong–Kung boundary convention: sinks specifically need a *blue*
    /// pebble at the end (outputs must reach slow memory).
    pub sinks_need_blue: bool,
}

impl SppVariant {
    /// The base game: recomputation and deletion both allowed.
    #[must_use]
    pub fn base() -> Self {
        SppVariant::default()
    }

    /// One-shot SPP (used by Theorem 2 and the approximation literature).
    #[must_use]
    pub fn one_shot() -> Self {
        SppVariant {
            one_shot: true,
            ..SppVariant::default()
        }
    }

    /// No-deletion SPP (Demaine & Liu's NP-complete variant).
    #[must_use]
    pub fn no_delete() -> Self {
        SppVariant {
            no_delete: true,
            ..SppVariant::default()
        }
    }

    /// The original Hong–Kung convention: inputs start blue, outputs
    /// must end blue.
    #[must_use]
    pub fn hong_kung() -> Self {
        SppVariant {
            sources_start_blue: true,
            sinks_need_blue: true,
            ..SppVariant::default()
        }
    }
}

/// An SPP problem instance: pebble `dag` with at most `r` red pebbles.
#[derive(Debug, Clone, Copy)]
pub struct SppInstance<'a> {
    /// The computational DAG to pebble.
    pub dag: &'a Dag,
    /// Fast memory capacity (maximum simultaneous red pebbles).
    pub r: usize,
    /// Rule costs.
    pub model: CostModel,
    /// Game variant.
    pub variant: SppVariant,
}

impl<'a> SppInstance<'a> {
    /// Base-variant instance with the classical I/O-only objective.
    #[must_use]
    pub fn io_only(dag: &'a Dag, r: usize, g: u64) -> Self {
        SppInstance {
            dag,
            r,
            model: CostModel::spp_io_only(g),
            variant: SppVariant::base(),
        }
    }

    /// Instance with computation costs (the Lemma 11 setting).
    #[must_use]
    pub fn with_compute(dag: &'a Dag, r: usize, g: u64) -> Self {
        SppInstance {
            dag,
            r,
            model: CostModel::mpp(g),
            variant: SppVariant::base(),
        }
    }

    /// Whether a valid pebbling can exist at all: requires
    /// `r ≥ Δ_in + 1` (§4, "straightforward bounds").
    #[must_use]
    pub fn is_feasible(&self) -> bool {
        self.r > self.dag.max_in_degree() && (self.dag.n() == 0 || self.r >= 1)
    }
}
