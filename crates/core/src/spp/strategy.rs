//! Strategy representation and the rule-enforcing validator.

use rbp_dag::NodeId;

use crate::{Cost, SppInstance, SppMove, SppState};

/// A pebbling strategy: the sequence of rule applications.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SppStrategy {
    /// The moves, in execution order.
    pub moves: Vec<SppMove>,
}

impl SppStrategy {
    /// Empty strategy.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Strategy from a move list.
    #[must_use]
    pub fn from_moves(moves: Vec<SppMove>) -> Self {
        SppStrategy { moves }
    }

    /// Number of moves.
    #[must_use]
    pub fn len(&self) -> usize {
        self.moves.len()
    }

    /// Whether there are no moves.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty()
    }

    /// Appends a move.
    pub fn push(&mut self, m: SppMove) {
        self.moves.push(m);
    }

    /// Validates against `instance` and returns the cost tally.
    pub fn validate(&self, instance: &SppInstance) -> Result<Cost, SppError> {
        validate(instance, &self.moves)
    }
}

/// A rule violation found while replaying a strategy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SppError {
    /// Index of the offending move (or `moves.len()` for terminal-state
    /// failures).
    pub step: usize,
    /// What went wrong.
    pub kind: SppErrorKind,
}

/// The kinds of rule violations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SppErrorKind {
    /// R1-S applied to a node with no blue pebble.
    LoadWithoutBlue(NodeId),
    /// R2-S applied to a node with no red pebble.
    StoreWithoutRed(NodeId),
    /// R3-S applied while some predecessor lacks a red pebble.
    MissingInput {
        /// The node being computed.
        node: NodeId,
        /// A predecessor without a red pebble.
        missing: NodeId,
    },
    /// Placing a red pebble would exceed the capacity `r`.
    MemoryExceeded {
        /// The node that was being pebbled.
        node: NodeId,
        /// The capacity.
        r: usize,
    },
    /// R4-S applied to a node without the pebble being removed.
    RemoveAbsent(NodeId),
    /// R4-S used in the no-deletion variant.
    DeletionForbidden(NodeId),
    /// R3-S applied a second time to the same node in the one-shot variant.
    RecomputationForbidden(NodeId),
    /// R3-S applied to a source node under the `sources_start_blue`
    /// convention (inputs are data, not derivable).
    SourceNotComputable(NodeId),
    /// Redundant placement: the node already holds that pebble. Rejected
    /// to keep strategies canonical (a red-on-red "load" would otherwise
    /// silently waste cost g).
    AlreadyPebbled(NodeId),
    /// After the last move some sink holds no pebble.
    NotTerminal(NodeId),
}

impl std::fmt::Display for SppError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "step {}: {:?}", self.step, self.kind)
    }
}

impl std::error::Error for SppError {}

/// Replays `moves` on `instance`, enforcing every rule, the memory bound,
/// the variant restrictions, and terminality. Returns the cost tally.
pub fn validate(instance: &SppInstance, moves: &[SppMove]) -> Result<Cost, SppError> {
    let mut state = SppState::initial_for(instance.dag, instance.variant);
    let mut cost = Cost::zero();
    for (step, &mv) in moves.iter().enumerate() {
        apply_checked(instance, &mut state, mv).map_err(|kind| SppError { step, kind })?;
        match mv {
            SppMove::Load(_) => cost.loads += 1,
            SppMove::Store(_) => cost.stores += 1,
            SppMove::Compute(_) => cost.computes += 1,
            SppMove::RemoveRed(_) | SppMove::RemoveBlue(_) => {}
        }
    }
    let bad_sink = instance.dag.sinks().into_iter().find(|&s| {
        if instance.variant.sinks_need_blue {
            !state.blue.contains(s)
        } else {
            !state.has_pebble(s)
        }
    });
    if let Some(sink) = bad_sink {
        return Err(SppError {
            step: moves.len(),
            kind: SppErrorKind::NotTerminal(sink),
        });
    }
    Ok(cost)
}

/// Applies one move to `state` if legal in `instance`.
pub(crate) fn apply_checked(
    instance: &SppInstance,
    state: &mut SppState,
    mv: SppMove,
) -> Result<(), SppErrorKind> {
    let dag = instance.dag;
    match mv {
        SppMove::Load(v) => {
            if state.red.contains(v) {
                return Err(SppErrorKind::AlreadyPebbled(v));
            }
            if !state.blue.contains(v) {
                return Err(SppErrorKind::LoadWithoutBlue(v));
            }
            if state.red_count() + 1 > instance.r {
                return Err(SppErrorKind::MemoryExceeded {
                    node: v,
                    r: instance.r,
                });
            }
            state.red.insert(v);
        }
        SppMove::Store(v) => {
            if state.blue.contains(v) {
                return Err(SppErrorKind::AlreadyPebbled(v));
            }
            if !state.red.contains(v) {
                return Err(SppErrorKind::StoreWithoutRed(v));
            }
            state.blue.insert(v);
        }
        SppMove::Compute(v) => {
            if state.red.contains(v) {
                return Err(SppErrorKind::AlreadyPebbled(v));
            }
            if instance.variant.one_shot && state.computed.contains(v) {
                return Err(SppErrorKind::RecomputationForbidden(v));
            }
            if instance.variant.sources_start_blue && dag.in_degree(v) == 0 {
                return Err(SppErrorKind::SourceNotComputable(v));
            }
            if let Some(&missing) = dag.preds(v).iter().find(|&&p| !state.red.contains(p)) {
                return Err(SppErrorKind::MissingInput { node: v, missing });
            }
            if state.red_count() + 1 > instance.r {
                return Err(SppErrorKind::MemoryExceeded {
                    node: v,
                    r: instance.r,
                });
            }
            state.red.insert(v);
            state.computed.insert(v);
        }
        SppMove::RemoveRed(v) => {
            if instance.variant.no_delete {
                return Err(SppErrorKind::DeletionForbidden(v));
            }
            if !state.red.remove(v) {
                return Err(SppErrorKind::RemoveAbsent(v));
            }
        }
        SppMove::RemoveBlue(v) => {
            if instance.variant.no_delete {
                return Err(SppErrorKind::DeletionForbidden(v));
            }
            if !state.blue.remove(v) {
                return Err(SppErrorKind::RemoveAbsent(v));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SppVariant;
    use rbp_dag::dag_from_edges;
    use SppMove::{Compute, Load, RemoveBlue, RemoveRed, Store};

    fn v(i: u32) -> NodeId {
        NodeId(i)
    }

    /// The Figure 1 DAG of the paper: v1..v7 = ids 0..6.
    /// v1,v2 -> v3; (v3',v4 analog) ... here we use the simpler fragment.
    fn join() -> rbp_dag::Dag {
        dag_from_edges(3, &[(0, 2), (1, 2)])
    }

    #[test]
    fn straight_line_compute_validates() {
        let d = join();
        let inst = SppInstance::io_only(&d, 3, 1);
        let cost = validate(&inst, &[Compute(v(0)), Compute(v(1)), Compute(v(2))]).unwrap();
        assert_eq!(
            cost,
            Cost {
                stores: 0,
                loads: 0,
                computes: 3
            }
        );
    }

    #[test]
    fn compute_requires_inputs_red() {
        let d = join();
        let inst = SppInstance::io_only(&d, 3, 1);
        let err = validate(&inst, &[Compute(v(0)), Compute(v(2))]).unwrap_err();
        assert_eq!(err.step, 1);
        assert_eq!(
            err.kind,
            SppErrorKind::MissingInput {
                node: v(2),
                missing: v(1)
            }
        );
    }

    #[test]
    fn memory_bound_enforced() {
        let d = join();
        let inst = SppInstance::io_only(&d, 2, 1);
        let err = validate(&inst, &[Compute(v(0)), Compute(v(1)), Compute(v(2))]).unwrap_err();
        assert_eq!(err.step, 2);
        assert!(matches!(
            err.kind,
            SppErrorKind::MemoryExceeded { r: 2, .. }
        ));
    }

    #[test]
    fn io_round_trip_validates_and_counts() {
        // Compute 0, store it, drop red, recompute path via load.
        let d = dag_from_edges(2, &[(0, 1)]);
        let inst = SppInstance::io_only(&d, 2, 5);
        let cost = validate(
            &inst,
            &[
                Compute(v(0)),
                Store(v(0)),
                RemoveRed(v(0)),
                Load(v(0)),
                Compute(v(1)),
            ],
        )
        .unwrap();
        assert_eq!(
            cost,
            Cost {
                stores: 1,
                loads: 1,
                computes: 2
            }
        );
        assert_eq!(cost.total(inst.model), 10);
    }

    #[test]
    fn load_requires_blue() {
        let d = dag_from_edges(1, &[]);
        let inst = SppInstance::io_only(&d, 1, 1);
        let err = validate(&inst, &[Load(v(0))]).unwrap_err();
        assert_eq!(err.kind, SppErrorKind::LoadWithoutBlue(v(0)));
    }

    #[test]
    fn store_requires_red() {
        let d = dag_from_edges(1, &[]);
        let inst = SppInstance::io_only(&d, 1, 1);
        let err = validate(&inst, &[Store(v(0))]).unwrap_err();
        assert_eq!(err.kind, SppErrorKind::StoreWithoutRed(v(0)));
    }

    #[test]
    fn remove_absent_pebble_rejected() {
        let d = dag_from_edges(1, &[]);
        let inst = SppInstance::io_only(&d, 1, 1);
        assert_eq!(
            validate(&inst, &[RemoveRed(v(0))]).unwrap_err().kind,
            SppErrorKind::RemoveAbsent(v(0))
        );
        assert_eq!(
            validate(&inst, &[RemoveBlue(v(0))]).unwrap_err().kind,
            SppErrorKind::RemoveAbsent(v(0))
        );
    }

    #[test]
    fn terminal_check_failure_names_a_bare_sink() {
        let d = join();
        let inst = SppInstance::io_only(&d, 3, 1);
        let err = validate(&inst, &[Compute(v(0))]).unwrap_err();
        assert_eq!(err.step, 1);
        assert_eq!(err.kind, SppErrorKind::NotTerminal(v(2)));
    }

    #[test]
    fn one_shot_forbids_recompute() {
        let d = dag_from_edges(2, &[(0, 1)]);
        let inst = SppInstance {
            dag: &d,
            r: 2,
            model: crate::CostModel::spp_io_only(1),
            variant: SppVariant::one_shot(),
        };
        let err = validate(
            &inst,
            &[Compute(v(0)), RemoveRed(v(0)), Compute(v(0)), Compute(v(1))],
        )
        .unwrap_err();
        assert_eq!(err.step, 2);
        assert_eq!(err.kind, SppErrorKind::RecomputationForbidden(v(0)));
    }

    #[test]
    fn base_variant_allows_recompute() {
        let d = dag_from_edges(2, &[(0, 1)]);
        let inst = SppInstance::io_only(&d, 2, 1);
        // Recompute 0 after dropping it: legal, and the second compute is
        // what makes the final Compute(1) valid.
        validate(
            &inst,
            &[Compute(v(0)), RemoveRed(v(0)), Compute(v(0)), Compute(v(1))],
        )
        .unwrap();
    }

    #[test]
    fn no_delete_variant_forbids_removal() {
        let d = dag_from_edges(1, &[]);
        let inst = SppInstance {
            dag: &d,
            r: 2,
            model: crate::CostModel::spp_io_only(1),
            variant: SppVariant::no_delete(),
        };
        let err = validate(&inst, &[Compute(v(0)), RemoveRed(v(0))]).unwrap_err();
        assert_eq!(err.kind, SppErrorKind::DeletionForbidden(v(0)));
    }

    #[test]
    fn redundant_placement_rejected() {
        let d = dag_from_edges(1, &[]);
        let inst = SppInstance::io_only(&d, 2, 1);
        assert_eq!(
            validate(&inst, &[Compute(v(0)), Compute(v(0))])
                .unwrap_err()
                .kind,
            SppErrorKind::AlreadyPebbled(v(0))
        );
        assert_eq!(
            validate(&inst, &[Compute(v(0)), Store(v(0)), Store(v(0))])
                .unwrap_err()
                .kind,
            SppErrorKind::AlreadyPebbled(v(0))
        );
    }

    #[test]
    fn strategy_wrapper_api() {
        let d = dag_from_edges(1, &[]);
        let inst = SppInstance::io_only(&d, 1, 1);
        let mut s = SppStrategy::new();
        assert!(s.is_empty());
        s.push(Compute(v(0)));
        assert_eq!(s.len(), 1);
        assert!(s.validate(&inst).is_ok());
    }

    #[test]
    fn feasibility_threshold() {
        let d = join();
        assert!(!SppInstance::io_only(&d, 2, 1).is_feasible());
        assert!(SppInstance::io_only(&d, 3, 1).is_feasible());
    }
}
