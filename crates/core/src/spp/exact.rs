//! Exact optimal SPP solver.
//!
//! A\* search over game states packed into `u64` bitmasks, built on the
//! shared [`crate::search`] engine. Optimal pebbling is PSPACE-complete
//! in general, so this is exponential; intended for the small instances
//! that experiments use as ground truth (`n ≤ ~14` in practice, hard
//! limit 64).
//!
//! Exactness-preserving reductions:
//!
//! 1. **Blue pebbles are never deleted.** Slow memory is unlimited and
//!    deletion is free, so keeping blue pebbles can never hurt.
//! 2. **Red pebbles are deleted lazily**: a `RemoveRed` transition is only
//!    generated when fast memory is full. Any strategy can defer each
//!    deletion to the moment space is actually needed, so some optimal
//!    strategy survives the restriction.
//! 3. **Admissible heuristic** ([`crate::search::AdmissibleHeuristic`]):
//!    remaining-computes plus the forced-I/O terms of the Lemma 1
//!    trivial bound. In the one-shot variant the heuristic additionally
//!    proves some states dead (a needed node was computed and dropped),
//!    which prunes them exactly.
//!
//! Disable the heuristic via [`SearchConfig`] to recover the original
//! uniform-cost (Dijkstra) behavior; the equivalence tests and the
//! before/after benchmarks rely on that mode.

use rbp_dag::NodeId;

use crate::arena::{pack_fields, unpack_fields, words_for};
use crate::driver::{self, Domain, EmitFn};
use crate::partition::Partition;
use crate::search::{
    trace_shards, HeurCtx, PackedMove, PhaseProf, PhaseStats, SearchConfig, SearchOutcome,
    SearchStats, ShardStats, StopReason, MAX_THREADS,
};
use crate::{AdmissibleHeuristic, Cost, SppInstance, SppMove, SppStrategy};

pub use crate::search::SolveLimits;

/// An optimal solution found by [`solve`].
#[derive(Debug, Clone)]
pub struct SppSolution {
    /// The optimal total cost under the instance's cost model.
    pub total: u64,
    /// Tally of the optimal strategy's rule applications.
    pub cost: Cost,
    /// A witness strategy achieving `total` (validates against the
    /// instance).
    pub strategy: SppStrategy,
}

#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct Key {
    red: u64,
    blue: u64,
    /// Ever-computed mask; tracked only for the one-shot variant (zero
    /// otherwise so states collapse).
    computed: u64,
}

// Packed move layout: tag in bits 30..=31, node in bits 0..=5.
const TAG_COMPUTE: u32 = 0;
const TAG_LOAD: u32 = 1;
const TAG_STORE: u32 = 2;
const TAG_REMOVE: u32 = 3;

#[inline]
fn encode(tag: u32, node: u32) -> PackedMove {
    (tag << 30) | node
}

fn decode(w: PackedMove) -> SppMove {
    let v = NodeId::new((w & 0x3f) as usize);
    match w >> 30 {
        TAG_COMPUTE => SppMove::Compute(v),
        TAG_LOAD => SppMove::Load(v),
        TAG_STORE => SppMove::Store(v),
        _ => SppMove::RemoveRed(v),
    }
}

/// Finds a minimum-total-cost pebbling with the default (fully
/// optimized) configuration, or `None` if the instance is infeasible
/// (`r ≤ Δ_in`), the DAG has more than 64 nodes, or
/// `limits.max_states` was exhausted.
#[must_use]
pub fn solve(instance: &SppInstance, limits: SolveLimits) -> Option<SppSolution> {
    solve_with(instance, &SearchConfig::default().with_limits(limits)).solution
}

/// [`solve`] with explicit optimization switches, also reporting search
/// statistics for benchmarking. Each call opens a `solve.spp` trace
/// span and reports the search counters and heuristic tightness through
/// `rbp-trace` (no-ops unless a sink is installed).
#[must_use]
pub fn solve_with(instance: &SppInstance, config: &SearchConfig) -> SearchOutcome<SppSolution> {
    let _span = rbp_trace::span_with(
        "solve.spp",
        vec![
            ("n", rbp_util::Json::from(instance.dag.n())),
            ("r", rbp_util::Json::from(instance.r)),
            ("g", rbp_util::Json::from(instance.model.g)),
            ("one_shot", rbp_util::Json::from(instance.variant.one_shot)),
            ("heuristic", rbp_util::Json::from(config.heuristic)),
            ("threads", rbp_util::Json::from(config.threads.max(1))),
            ("partition", rbp_util::Json::from(config.partition.as_str())),
        ],
    );
    let (solution, stats, reason, shards, phases) = solve_inner(instance, config);
    stats.trace("spp", solution.as_ref().map(|s| s.total));
    trace_shards("spp", &shards);
    phases.trace("spp");
    SearchOutcome {
        solution,
        stats,
        reason,
        shards,
        phases,
    }
}

/// The SPP state space described for the shared search drivers: keys
/// are `(red, blue[, computed])` masks bit-packed to two (three under
/// the one-shot variant) `n`-bit fields.
struct SppDomain {
    n: usize,
    r: usize,
    compute: u64,
    g: u64,
    one_shot: bool,
    no_delete: bool,
    sources_start_blue: bool,
    sinks_need_blue: bool,
    preds_mask: Vec<u64>,
    sinks_mask: u64,
    start_blue: u64,
    heur: AdmissibleHeuristic,
    use_heuristic: bool,
    dominance: bool,
    max_priority: u64,
    partition: Partition,
}

/// Per-worker scratch: just the embedded phase profiler (successor
/// generation itself is allocation-free — masks live on the stack).
#[derive(Default)]
struct SppScratch {
    prof: PhaseProf,
}

impl SppDomain {
    /// Packed fields: `computed` is tracked only one-shot (zero and
    /// omitted otherwise so states collapse).
    fn field_count(&self) -> usize {
        if self.one_shot {
            3
        } else {
            2
        }
    }
}

impl Domain for SppDomain {
    type Key = Key;
    type Scratch = SppScratch;

    fn key_words(&self) -> usize {
        words_for(self.field_count(), self.n)
    }

    fn pack(&self, key: &Key, out: &mut [u64]) {
        let fields = [key.red, key.blue, key.computed];
        pack_fields(&fields[..self.field_count()], self.n, out);
    }

    fn unpack(&self, words: &[u64]) -> Key {
        let mut fields = [0u64; 3];
        let fc = self.field_count();
        unpack_fields(words, self.n, &mut fields[..fc]);
        Key {
            red: fields[0],
            blue: fields[1],
            computed: fields[2],
        }
    }

    fn root(&self) -> Key {
        Key {
            red: 0,
            blue: self.start_blue,
            computed: 0,
        }
    }

    fn is_goal(&self, key: &Key) -> bool {
        if self.sinks_need_blue {
            self.sinks_mask & !key.blue == 0
        } else {
            self.sinks_mask & !(key.red | key.blue) == 0
        }
    }

    fn heuristic(&self, key: &Key) -> Option<u64> {
        if self.use_heuristic {
            self.heur.eval(key.red, key.blue, key.computed)
        } else {
            Some(0)
        }
    }

    fn max_priority(&self) -> u64 {
        self.max_priority
    }

    fn owner(&self, key: &Key, hash: u64, shards: usize) -> usize {
        self.partition.owner(key.red, key.blue, hash, shards)
    }

    fn expand(&self, key: &Key, scratch: &mut SppScratch, emit: EmitFn<'_, Key>) {
        let Key {
            red,
            blue,
            computed,
        } = *key;
        let one_shot = self.one_shot;
        let prof = &mut scratch.prof;

        // Per-parent heuristic context: one from-scratch closure walk
        // whose needed set answers the base-variant successors in O(1)
        // via `eval_delta` (the one-shot / Hong–Kung variants carry I/O
        // terms and fall back to the full evaluation automatically).
        // `prepare` returns `None` only on dead states, which the driver
        // never expands; fall back to per-successor `eval` regardless.
        let hctx: Option<HeurCtx> = if self.use_heuristic {
            let t0 = prof.start();
            prof.stats.heur_full_evals += 1;
            let ctx = self.heur.prepare(red, blue, computed);
            prof.stop_heur(t0);
            ctx
        } else {
            None
        };
        let mut emit_one = |nk: Key, cost: u64, mv: PackedMove| {
            emit(nk, cost, mv, &mut || {
                if !self.use_heuristic {
                    return Some(0);
                }
                let t0 = prof.start();
                let hv = match &hctx {
                    Some(ctx) => {
                        self.heur
                            .eval_delta(ctx, nk.red, nk.blue, nk.computed, &mut prof.stats)
                    }
                    None => self.heur.eval(nk.red, nk.blue, nk.computed),
                };
                prof.stop_heur(t0);
                hv
            });
        };

        let mut suppressed = 0u64;
        let red_count = red.count_ones() as usize;
        if red_count < self.r {
            // Compute moves.
            for (i, &pm) in self.preds_mask.iter().enumerate() {
                let b = 1u64 << i;
                if red & b != 0 {
                    continue;
                }
                if pm & !red != 0 {
                    continue;
                }
                if one_shot && computed & b != 0 {
                    continue;
                }
                // Under the Hong–Kung convention, inputs are data.
                if self.sources_start_blue && pm == 0 {
                    continue;
                }
                // Dominance: recomputing an already-stored node is
                // (weakly) dominated by reloading it — the load emitted
                // below reaches the *identical* successor at cost
                // `g ≤ compute`. Only exact when the states really
                // coincide, i.e. outside the one-shot variant.
                if self.dominance && !one_shot && blue & b != 0 && self.g <= self.compute {
                    suppressed += 1;
                    continue;
                }
                let nk = Key {
                    red: red | b,
                    blue,
                    computed: if one_shot { computed | b } else { 0 },
                };
                emit_one(nk, self.compute, encode(TAG_COMPUTE, i as u32));
            }
            // Load moves.
            for i in iter_bits(blue & !red) {
                let nk = Key {
                    red: red | (1 << i),
                    blue,
                    computed,
                };
                emit_one(nk, self.g, encode(TAG_LOAD, i));
            }
        } else if !self.no_delete {
            // At (or above) capacity: lazy eviction.
            for i in iter_bits(red) {
                let nk = Key {
                    red: red & !(1 << i),
                    blue,
                    computed,
                };
                emit_one(nk, 0, encode(TAG_REMOVE, i));
            }
        }
        // Store moves (legal at any occupancy). Storing an already-blue
        // node is structurally excluded by the `red & !blue` mask.
        for i in iter_bits(red & !blue) {
            let nk = Key {
                red,
                blue: blue | (1 << i),
                computed,
            };
            emit_one(nk, self.g, encode(TAG_STORE, i));
        }
        scratch.prof.stats.idle_suppressed += suppressed;
    }

    fn take_phases(&self, scratch: &mut SppScratch) -> PhaseStats {
        scratch.prof.take()
    }
}

/// Builds the search domain for a supported, non-empty, feasible
/// instance; `None` otherwise (the caller distinguishes the trivial
/// `n == 0` case itself).
fn build_domain(instance: &SppInstance, config: &SearchConfig) -> Option<SppDomain> {
    let dag = instance.dag;
    let n = dag.n();
    if n == 0 || n > 64 || !instance.is_feasible() {
        return None;
    }
    let model = instance.model;

    let preds_mask: Vec<u64> = dag
        .nodes()
        .map(|v| dag.preds(v).iter().fold(0u64, |m, p| m | bit(*p)))
        .collect();
    let sinks_mask: u64 = dag.sinks().iter().fold(0u64, |m, s| m | bit(*s));
    let start_blue: u64 = if instance.variant.sources_start_blue {
        dag.sources().iter().fold(0u64, |m, s| m | bit(*s))
    } else {
        0
    };

    let ub = (model.g * (dag.max_in_degree() as u64 + 1))
        .saturating_add(model.compute)
        .saturating_mul(n as u64)
        .saturating_add(model.g.saturating_mul(2 * n as u64));
    let max_priority = ub
        .saturating_mul(2)
        .saturating_add(model.g.saturating_add(model.compute));

    Some(SppDomain {
        n,
        r: instance.r,
        compute: model.compute,
        g: model.g,
        one_shot: instance.variant.one_shot,
        no_delete: instance.variant.no_delete,
        sources_start_blue: instance.variant.sources_start_blue,
        sinks_need_blue: instance.variant.sinks_need_blue,
        preds_mask,
        sinks_mask,
        start_blue,
        heur: AdmissibleHeuristic::for_spp(instance),
        use_heuristic: config.heuristic,
        dominance: config.dominance,
        max_priority,
        partition: Partition::build(config.partition, dag, config.threads.clamp(1, MAX_THREADS)),
    })
}

#[allow(clippy::type_complexity)]
fn solve_inner(
    instance: &SppInstance,
    config: &SearchConfig,
) -> (
    Option<SppSolution>,
    SearchStats,
    StopReason,
    Vec<ShardStats>,
    PhaseStats,
) {
    if instance.dag.n() == 0 {
        return (
            Some(SppSolution {
                total: 0,
                cost: Cost::zero(),
                strategy: SppStrategy::new(),
            }),
            SearchStats::default(),
            StopReason::Solved,
            Vec::new(),
            PhaseStats::default(),
        );
    }
    let Some(domain) = build_domain(instance, config) else {
        return (
            None,
            SearchStats::default(),
            StopReason::Unsupported,
            Vec::new(),
            PhaseStats::default(),
        );
    };
    // A dead root (one-shot variants) is caught by the driver through
    // the heuristic's `None` and reported as `Exhausted`.
    let out = driver::search(&domain, config);
    let solution = out
        .best
        .map(|(total, path)| reconstruct(instance, path, total));
    (solution, out.stats, out.reason, out.shards, out.phases)
}

fn reconstruct(instance: &SppInstance, path: Vec<(Key, PackedMove)>, total: u64) -> SppSolution {
    let moves: Vec<SppMove> = path.into_iter().map(|(_, mv)| decode(mv)).collect();
    let strategy = SppStrategy::from_moves(moves);
    let cost = strategy
        .validate(instance)
        .expect("solver produced an invalid strategy");
    debug_assert_eq!(cost.total(instance.model), total);
    SppSolution {
        total,
        cost,
        strategy,
    }
}

#[inline]
fn bit(v: NodeId) -> u64 {
    1u64 << v.index()
}

fn iter_bits(mut mask: u64) -> impl Iterator<Item = u32> {
    std::iter::from_fn(move || {
        if mask == 0 {
            None
        } else {
            let i = mask.trailing_zeros();
            mask &= mask - 1;
            Some(i)
        }
    })
}

/// Convenience: the minimum number of I/O steps to pebble `dag` with `r`
/// red pebbles in the base variant (classical SPP objective).
#[must_use]
pub fn min_io(dag: &rbp_dag::Dag, r: usize) -> Option<u64> {
    let inst = SppInstance::io_only(dag, r, 1);
    solve(&inst, SolveLimits::default()).map(|s| s.cost.io_steps())
}

#[doc(hidden)]
pub mod probe {
    //! Test hooks into the successor-generation kernel: raw naive vs
    //! dominance-pruned successor sets along deterministic
    //! pseudo-random walks, for the successor-set equivalence property
    //! tests. Not a public API.

    use super::*;
    use rbp_util::Rng;

    /// A raw successor snapshot: state masks plus edge cost.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
    pub struct Succ {
        /// Red (fast-memory) mask.
        pub red: u64,
        /// Blue (slow-memory) mask.
        pub blue: u64,
        /// Ever-computed mask (zero outside the one-shot variant).
        pub computed: u64,
        /// Edge cost of the generating move.
        pub cost: u64,
    }

    fn expand_into(domain: &SppDomain, key: &Key, scratch: &mut SppScratch) -> Vec<Succ> {
        let mut out = Vec::new();
        domain.expand(key, scratch, &mut |k2, c, _mv, _hv| {
            out.push(Succ {
                red: k2.red,
                blue: k2.blue,
                computed: k2.computed,
                cost: c,
            })
        });
        out
    }

    fn raw_config(dominance: bool) -> SearchConfig {
        SearchConfig {
            heuristic: false,
            dominance,
            ..SearchConfig::default()
        }
    }

    /// Walks `steps` states from the root along a seeded random path
    /// (always stepping through a *naive* successor), returning the
    /// `(naive, pruned)` successor sets of every visited state.
    /// Panics on unsupported instances.
    #[must_use]
    pub fn successor_walk(
        instance: &SppInstance,
        seed: u64,
        steps: usize,
    ) -> Vec<(Vec<Succ>, Vec<Succ>)> {
        let naive = build_domain(instance, &raw_config(false)).expect("unsupported instance");
        let pruned = build_domain(instance, &raw_config(true)).expect("unsupported instance");
        let mut rng = Rng::new(seed);
        let mut scratch = SppScratch::default();
        let mut key = naive.root();
        let mut out = Vec::with_capacity(steps);
        for _ in 0..steps {
            let ns = expand_into(&naive, &key, &mut scratch);
            let ps = expand_into(&pruned, &key, &mut scratch);
            if ns.is_empty() {
                break;
            }
            let pick = rng.index(ns.len());
            let next = Key {
                red: ns[pick].red,
                blue: ns[pick].blue,
                computed: ns[pick].computed,
            };
            out.push((ns, ps));
            key = next;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CostModel, SppVariant};
    use rbp_dag::{dag_from_edges, generators};

    #[test]
    fn chain_needs_no_io() {
        let d = generators::chain(6);
        let sol = solve(&SppInstance::io_only(&d, 2, 1), SolveLimits::default()).unwrap();
        assert_eq!(sol.total, 0);
        assert_eq!(sol.cost.io_steps(), 0);
    }

    #[test]
    fn empty_dag_costs_zero() {
        let d = dag_from_edges(0, &[]);
        let sol = solve(&SppInstance::io_only(&d, 1, 1), SolveLimits::default()).unwrap();
        assert_eq!(sol.total, 0);
        assert!(sol.strategy.is_empty());
    }

    #[test]
    fn infeasible_capacity_returns_none() {
        let d = dag_from_edges(3, &[(0, 2), (1, 2)]);
        assert!(solve(&SppInstance::io_only(&d, 2, 1), SolveLimits::default()).is_none());
    }

    #[test]
    fn too_many_nodes_returns_none() {
        let d = generators::chain(65);
        assert!(solve(&SppInstance::io_only(&d, 2, 1), SolveLimits::default()).is_none());
    }

    #[test]
    fn with_compute_costs_counts_n_computes_minimum() {
        // Chain of 5 with ample memory: optimal = 5 computes, no I/O.
        let d = generators::chain(5);
        let inst = SppInstance::with_compute(&d, 3, 4);
        let sol = solve(&inst, SolveLimits::default()).unwrap();
        assert_eq!(sol.total, 5);
        assert_eq!(sol.cost.computes, 5);
    }

    #[test]
    fn fig1_dag_single_processor_io() {
        // Figure 1 of the paper: ids v1..v7 -> 0..6.
        // We encode: u1,u2 -> a ; u3,u4 -> b ; a,b -> s.
        let d = dag_from_edges(7, &[(0, 2), (1, 2), (3, 5), (4, 5), (2, 6), (5, 6)]);
        let inst = SppInstance::io_only(&d, 3, 1);
        let sol = solve(&inst, SolveLimits::default()).unwrap();
        // With r=3: compute a (3 pebbles), store a, free reds, compute b,
        // load a, compute s → exactly 2 I/O.
        assert_eq!(sol.total, 2);
    }

    #[test]
    fn larger_memory_never_costs_more() {
        let d = generators::binary_in_tree(4);
        let mut prev = u64::MAX;
        for r in 3..=7 {
            let sol = solve(&SppInstance::io_only(&d, r, 1), SolveLimits::default()).unwrap();
            assert!(sol.total <= prev, "r={r} worsened the optimum");
            prev = sol.total;
        }
    }

    #[test]
    fn witness_strategy_validates() {
        let d = generators::binary_in_tree(4);
        let inst = SppInstance::with_compute(&d, 3, 2);
        let sol = solve(&inst, SolveLimits::default()).unwrap();
        let cost = sol.strategy.validate(&inst).unwrap();
        assert_eq!(cost.total(inst.model), sol.total);
    }

    #[test]
    fn one_shot_at_least_as_expensive_as_base() {
        let d = generators::binary_in_tree(4);
        for r in 3..=4 {
            let base = solve(&SppInstance::io_only(&d, r, 1), SolveLimits::default())
                .unwrap()
                .total;
            let one_shot = solve(
                &SppInstance {
                    dag: &d,
                    r,
                    model: CostModel::spp_io_only(1),
                    variant: SppVariant::one_shot(),
                },
                SolveLimits::default(),
            )
            .unwrap()
            .total;
            assert!(one_shot >= base);
        }
    }

    #[test]
    fn no_delete_variant_solves_small_instances() {
        let d = generators::chain(4);
        let sol = solve(
            &SppInstance {
                dag: &d,
                r: 4,
                model: CostModel::spp_io_only(1),
                variant: SppVariant::no_delete(),
            },
            SolveLimits::default(),
        )
        .unwrap();
        assert_eq!(sol.total, 0, "whole chain fits in memory");
    }

    #[test]
    fn min_io_convenience() {
        let d = generators::chain(3);
        assert_eq!(min_io(&d, 2), Some(0));
    }

    #[test]
    fn diamond_with_tight_memory_requires_io() {
        // Diamond of width 3 with r = 4: all 3 mids + sink need pebbles,
        // plus the source's pebble is needed while computing mids.
        let d = generators::diamond(3);
        let tight = solve(&SppInstance::io_only(&d, 4, 1), SolveLimits::default())
            .unwrap()
            .total;
        let roomy = solve(&SppInstance::io_only(&d, 5, 1), SolveLimits::default())
            .unwrap()
            .total;
        assert_eq!(roomy, 0);
        assert!(tight <= 2, "recomputation of the free source caps I/O");
    }

    #[test]
    fn state_limit_aborts() {
        let d = generators::binary_in_tree(8);
        let out = solve_with(
            &SppInstance::io_only(&d, 3, 1),
            &SearchConfig::default().with_limits(SolveLimits::states(10)),
        );
        assert!(out.solution.is_none());
        assert_eq!(out.reason, StopReason::StateLimit);
    }

    #[test]
    fn parallel_matches_sequential_cost() {
        let d = generators::grid(3, 3);
        let inst = SppInstance::with_compute(&d, 3, 2);
        let seq = solve_with(&inst, &SearchConfig::default());
        for threads in [2usize, 4] {
            let par = solve_with(&inst, &SearchConfig::default().with_threads(threads));
            assert_eq!(
                seq.solution.as_ref().unwrap().total,
                par.solution.as_ref().unwrap().total,
                "threads={threads}"
            );
            par.solution.unwrap().strategy.validate(&inst).unwrap();
        }
    }

    #[test]
    fn hong_kung_variant_agrees_with_baseline() {
        let d = generators::binary_in_tree(4);
        let inst = SppInstance {
            dag: &d,
            r: 3,
            model: CostModel::spp_io_only(1),
            variant: SppVariant::hong_kung(),
        };
        let base = solve_with(&inst, &SearchConfig::baseline());
        let opt = solve_with(&inst, &SearchConfig::default());
        assert_eq!(
            base.solution.unwrap().total,
            opt.solution.as_ref().unwrap().total
        );
        opt.solution.unwrap().strategy.validate(&inst).unwrap();
    }

    #[test]
    fn heuristic_prunes_without_changing_optimum() {
        let d = generators::grid(3, 3);
        let inst = SppInstance::with_compute(&d, 3, 2);
        let base = solve_with(&inst, &SearchConfig::baseline());
        let opt = solve_with(&inst, &SearchConfig::default());
        let (b, o) = (base.solution.unwrap(), opt.solution.unwrap());
        assert_eq!(b.total, o.total);
        assert!(
            opt.stats.settled < base.stats.settled,
            "A* should settle fewer states ({} vs {})",
            opt.stats.settled,
            base.stats.settled
        );
    }
}
