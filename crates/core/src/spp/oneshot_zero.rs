//! The Theorem 2 decision procedure: does one-shot SPP admit a
//! **zero-cost** pebbling?
//!
//! In a cost-0 one-shot pebbling no I/O rule can ever fire, so blue
//! pebbles are unusable, recomputation is forbidden, and a red pebble is
//! deleted exactly when all successors of its node have been computed
//! (sinks are never deleted — they are the outputs). A pebbling is then
//! fully characterized by the order of the `n` compute steps, and a
//! zero-cost pebbling with capacity `r` exists iff some topological order
//! keeps the live set (plus the node being placed) within `r` at every
//! step. This module decides that by best-first search on the bottleneck
//! peak over downward-closed computed sets, and returns a witness order.
//!
//! This is exactly the problem the paper's clique reduction (Theorem 2,
//! Figures 3–4) proves NP-hard, so exponential time here is expected; the
//! DP is exact for `n ≤ 64` and fast when `r` prunes aggressively.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use rbp_dag::{Dag, NodeId};

/// Whether a zero-cost one-shot pebbling with `r` red pebbles exists.
///
/// Returns `None` when `dag` has more than 64 nodes.
#[must_use]
pub fn zero_io_pebbling_exists(dag: &Dag, r: usize) -> Option<bool> {
    zero_io_order(dag, r).map(|w| w.is_some())
}

/// Finds a compute order witnessing a zero-cost one-shot pebbling with
/// `r` red pebbles, or `None` inner value if no such pebbling exists.
///
/// Outer `None` when the DAG exceeds 64 nodes.
#[must_use]
pub fn zero_io_order(dag: &Dag, r: usize) -> Option<Option<Vec<NodeId>>> {
    let n = dag.n();
    if n > 64 {
        return None;
    }
    if n == 0 {
        return Some(Some(Vec::new()));
    }
    let full: u64 = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
    let preds_mask: Vec<u64> = dag
        .nodes()
        .map(|v| {
            dag.preds(v)
                .iter()
                .fold(0u64, |m, p| m | (1u64 << p.index()))
        })
        .collect();
    let succs_mask: Vec<u64> = dag
        .nodes()
        .map(|v| {
            dag.succs(v)
                .iter()
                .fold(0u64, |m, p| m | (1u64 << p.index()))
        })
        .collect();
    let live_count = |mask: u64| -> u32 {
        let mut live = 0u32;
        let mut m = mask;
        while m != 0 {
            let i = m.trailing_zeros() as usize;
            m &= m - 1;
            if succs_mask[i] == 0 || succs_mask[i] & !mask != 0 {
                live += 1;
            }
        }
        live
    };

    let mut best: HashMap<u64, u32> = HashMap::new();
    let mut parent: HashMap<u64, (u64, NodeId)> = HashMap::new();
    let mut heap: BinaryHeap<(Reverse<u32>, u64)> = BinaryHeap::new();
    best.insert(0, 0);
    heap.push((Reverse(0), 0));
    while let Some((Reverse(peak), mask)) = heap.pop() {
        if best.get(&mask).copied() != Some(peak) {
            continue;
        }
        if peak as usize > r {
            // Bottleneck already too large; everything later is worse.
            return Some(None);
        }
        if mask == full {
            // Reconstruct the witness order.
            let mut order = Vec::with_capacity(n);
            let mut cur = full;
            while let Some(&(prev, v)) = parent.get(&cur) {
                order.push(v);
                cur = prev;
            }
            order.reverse();
            return Some(Some(order));
        }
        // Peak while placing any node i: all still-needed values plus i.
        // Predecessors of i are live in `mask` (i is uncomputed), so
        // live(mask) ∪ {i} is the instantaneous requirement.
        let during = live_count(mask) + 1;
        for (i, &pm) in preds_mask.iter().enumerate() {
            let b = 1u64 << i;
            if mask & b != 0 || pm & !mask != 0 {
                continue;
            }
            let new_mask = mask | b;
            // After placing, some preds may die; the lasting requirement
            // is live(new_mask) ≤ during, so `during` dominates.
            let new_peak = peak.max(during);
            if new_peak as usize <= r && best.get(&new_mask).is_none_or(|&p| new_peak < p) {
                best.insert(new_mask, new_peak);
                parent.insert(new_mask, (mask, NodeId::new(i)));
                heap.push((Reverse(new_peak), new_mask));
            }
        }
    }
    Some(None)
}

/// Converts a witness order into an explicit one-shot SPP strategy
/// (computes plus the forced deletions), suitable for the validator.
#[must_use]
pub fn order_to_strategy(dag: &Dag, order: &[NodeId]) -> crate::SppStrategy {
    use crate::SppMove;
    let n = dag.n();
    let mut remaining_uses: Vec<usize> = dag.nodes().map(|v| dag.out_degree(v)).collect();
    let mut moves = Vec::with_capacity(2 * n);
    for &v in order {
        moves.push(SppMove::Compute(v));
        for &p in dag.preds(v) {
            remaining_uses[p.index()] -= 1;
            if remaining_uses[p.index()] == 0 && dag.out_degree(p) > 0 {
                moves.push(SppMove::RemoveRed(p));
            }
        }
    }
    crate::SppStrategy::from_moves(moves)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CostModel, SppInstance, SppVariant};
    use rbp_dag::{dag_from_edges, generators};

    #[test]
    fn chain_pebbles_with_two() {
        let d = generators::chain(10);
        assert_eq!(zero_io_pebbling_exists(&d, 2), Some(true));
        assert_eq!(zero_io_pebbling_exists(&d, 1), Some(false));
    }

    #[test]
    fn diamond_needs_width_plus_one() {
        let d = generators::diamond(4);
        assert_eq!(zero_io_pebbling_exists(&d, 5), Some(true));
        assert_eq!(zero_io_pebbling_exists(&d, 4), Some(false));
    }

    #[test]
    fn empty_dag() {
        let d = dag_from_edges(0, &[]);
        assert_eq!(zero_io_order(&d, 0), Some(Some(vec![])));
    }

    #[test]
    fn witness_order_is_topological_and_tight() {
        let d = generators::binary_in_tree(4);
        let order = zero_io_order(&d, 4).unwrap().expect("feasible at r=4");
        assert_eq!(order.len(), d.n());
        // Check topological validity.
        let mut seen = d.empty_set();
        for &v in &order {
            for &p in d.preds(v) {
                assert!(seen.contains(p), "order violates dependency");
            }
            seen.insert(v);
        }
    }

    #[test]
    fn witness_converts_to_valid_zero_cost_strategy() {
        let d = generators::binary_in_tree(4);
        let order = zero_io_order(&d, 4).unwrap().unwrap();
        let strat = order_to_strategy(&d, &order);
        let inst = SppInstance {
            dag: &d,
            r: 4,
            model: CostModel::spp_io_only(1),
            variant: SppVariant::one_shot(),
        };
        let cost = strat.validate(&inst).unwrap();
        assert_eq!(cost.io_steps(), 0);
        assert_eq!(cost.computes as usize, d.n());
    }

    #[test]
    fn threshold_matches_min_peak_memory() {
        // The decision threshold must agree with the exact DP in rbp-dag.
        for (name, d) in [
            ("tree", generators::binary_in_tree(8)),
            ("grid", generators::grid(3, 3)),
            ("fft", generators::fft(2)),
            ("diamond", generators::diamond(5)),
        ] {
            let peak = rbp_dag::min_peak_memory(&d, 64).unwrap();
            assert_eq!(
                zero_io_pebbling_exists(&d, peak),
                Some(true),
                "{name}: feasible at its own peak"
            );
            if peak > 0 {
                assert_eq!(
                    zero_io_pebbling_exists(&d, peak - 1),
                    Some(false),
                    "{name}: infeasible below the peak"
                );
            }
        }
    }

    #[test]
    fn oversized_dag_returns_none() {
        let d = generators::chain(65);
        assert_eq!(zero_io_pebbling_exists(&d, 2), None);
    }
}
