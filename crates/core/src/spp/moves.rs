//! The four SPP transition rules as explicit moves.

use rbp_dag::NodeId;

/// One application of an SPP rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SppMove {
    /// R1-S: place a red pebble on a node holding a blue pebble
    /// (load from slow memory). Costs `g`.
    Load(NodeId),
    /// R2-S: place a blue pebble on a node holding a red pebble
    /// (store to slow memory). Costs `g`.
    Store(NodeId),
    /// R3-S: place a red pebble on a node whose predecessors all hold red
    /// pebbles (compute). Costs `compute`.
    Compute(NodeId),
    /// R4-S: remove a red pebble. Free.
    RemoveRed(NodeId),
    /// R4-S: remove a blue pebble. Free.
    RemoveBlue(NodeId),
}

impl SppMove {
    /// Whether this move is an I/O rule application (R1 or R2).
    #[must_use]
    pub fn is_io(&self) -> bool {
        matches!(self, SppMove::Load(_) | SppMove::Store(_))
    }

    /// Whether this move is a deletion (R4).
    #[must_use]
    pub fn is_removal(&self) -> bool {
        matches!(self, SppMove::RemoveRed(_) | SppMove::RemoveBlue(_))
    }

    /// The node the move touches.
    #[must_use]
    pub fn node(&self) -> NodeId {
        match *self {
            SppMove::Load(v)
            | SppMove::Store(v)
            | SppMove::Compute(v)
            | SppMove::RemoveRed(v)
            | SppMove::RemoveBlue(v) => v,
        }
    }
}

impl std::fmt::Display for SppMove {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SppMove::Load(v) => write!(f, "load {v}"),
            SppMove::Store(v) => write!(f, "store {v}"),
            SppMove::Compute(v) => write!(f, "compute {v}"),
            SppMove::RemoveRed(v) => write!(f, "remove-red {v}"),
            SppMove::RemoveBlue(v) => write!(f, "remove-blue {v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        let v = NodeId(3);
        assert!(SppMove::Load(v).is_io());
        assert!(SppMove::Store(v).is_io());
        assert!(!SppMove::Compute(v).is_io());
        assert!(SppMove::RemoveRed(v).is_removal());
        assert!(SppMove::RemoveBlue(v).is_removal());
        assert!(!SppMove::Compute(v).is_removal());
        assert_eq!(SppMove::Compute(v).node(), v);
    }

    #[test]
    fn display() {
        assert_eq!(SppMove::Load(NodeId(1)).to_string(), "load v1");
        assert_eq!(SppMove::RemoveBlue(NodeId(2)).to_string(), "remove-blue v2");
    }
}
