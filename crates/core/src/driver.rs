//! Sequential and hash-sharded parallel A\* drivers over the [`Domain`]
//! abstraction.
//!
//! Both exact solvers (MPP and SPP) describe their state space through
//! [`Domain`] — packing/unpacking of bit-packed keys, goal test,
//! admissible heuristic, successor enumeration — and the drivers here
//! own the search loop, the packed interning arenas, and the frontier.
//!
//! `threads = 1` runs [`sequential`]: the classic A\* loop, stopping at
//! the first goal pop (optimal under the consistent heuristic), with
//! identical expansion order to the pre-refactor engine.
//!
//! `threads ≥ 2` runs [`parallel`], an HDA\*-style search (Kishimoto et
//! al.): every canonical state is **owned** by a shard chosen through
//! [`Domain::owner`] — by default the hash partition ([`shard_of`]),
//! or a structure-aware projection when the solver installs a
//! [`crate::partition::Partition`]; each worker keeps a private arena +
//! frontier for its shard and forwards successors it does not own over
//! bounded SPSC rings, packed into fixed-capacity [`MsgBlock`]s that
//! flush on fill or on local-frontier exhaustion. A shared atomic
//! **incumbent** (best goal distance so far) prunes pushes and pops;
//! goals are not expanded but recorded, and the search continues until
//! global quiescence — at which point every frontier's minimum `f` is
//! at least the incumbent, which (with the admissible heuristic) proves
//! the incumbent optimal. Quiescence is detected with monotone
//! sent/received **block** counters plus an idle bitmask, double-read
//! so a racing message cannot be missed: `sent` is incremented *before*
//! a ring push and `received` *after* the block is fully processed, and
//! a worker flushes every out-buffer before advertising idle, so "all
//! workers idle and `sent == received`" observed twice with no send in
//! between implies no work exists anywhere.
//!
//! When a worker's frontier is empty but quiescence has not been
//! reached, it **speculatively expands** the best foreign successor it
//! buffered instead of spinning. Every speculative state was *also*
//! delivered to its true owner, so the buffer never holds the only copy
//! of any work item and can be ignored by the termination argument;
//! duplicates reconcile through the ordinary arena g-value check, so
//! optimality is untouched and the only cost is some duplicated
//! expansion (counted per shard as `foreign_expansions` / `dup_msgs`).
//!
//! Resource limits are **global** at any thread count: a shared settled
//! counter and the shared deadline abort every worker through a status
//! word, and the distinct abort causes surface as
//! [`StopReason::StateLimit`] vs [`StopReason::Deadline`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::arena::{gid, gid_idx, gid_shard, hash_words, shard_of, StateArena, MAX_KEY_WORDS};
use crate::search::{
    phase_timing_enabled, Frontier, PackedMove, PhaseStats, SearchConfig, SearchStats, ShardStats,
    SolveLimits, StopReason, MAX_THREADS,
};
use crate::spsc::Spsc;

/// Lazily evaluated admissible bound for an emitted successor: `None`
/// marks the state provably dead. See [`Domain::expand`].
pub type HeurThunk<'a> = &'a mut dyn FnMut() -> Option<u64>;

/// Successor sink passed to [`Domain::expand`]: receives
/// `(key, edge_cost, move, heuristic_thunk)` per canonical successor.
pub type EmitFn<'a, K> = &'a mut dyn FnMut(K, u64, PackedMove, HeurThunk<'_>);

/// A solver-specific description of an implicit shortest-path space.
///
/// Implementations canonicalize inside [`Domain::expand`] (the driver
/// never sees raw states) and must keep the emission order
/// deterministic — the sequential engine's tie-breaking, and therefore
/// its exact witness, depends on it.
///
/// Public (re-exported through [`crate::engine`]) so downstream game
/// variants — e.g. the three-level hierarchy in `rbp-hier` — can plug
/// their state spaces into the same sequential and sharded-parallel
/// engines the built-in MPP/SPP solvers use.
pub trait Domain: Sync {
    /// Unpacked state (solver-native masks).
    type Key: Copy;
    /// Reusable per-worker expansion scratch.
    type Scratch: Default;

    /// Packed-key width in 64-bit words (at most [`MAX_KEY_WORDS`]).
    fn key_words(&self) -> usize;
    /// Packs `key` into exactly [`Domain::key_words`] words.
    fn pack(&self, key: &Self::Key, out: &mut [u64]);
    /// Inverse of [`Domain::pack`].
    fn unpack(&self, words: &[u64]) -> Self::Key;
    /// The (already canonical) start state.
    fn root(&self) -> Self::Key;
    /// Goal test.
    fn is_goal(&self, key: &Self::Key) -> bool;
    /// Admissible lower bound on remaining cost; `None` marks the state
    /// provably dead (never enqueued). Must return `Some(0)`-style
    /// constants when the heuristic is disabled in config so baselines
    /// stay comparable. The drivers call this for the root and for
    /// states arriving over cross-shard channels; locally generated
    /// successors carry the (incrementally evaluated) bound emitted by
    /// [`Domain::expand`] instead.
    fn heuristic(&self, key: &Self::Key) -> Option<u64>;
    /// Emits every canonical successor as `(key, edge_cost, move,
    /// heuristic_thunk)`. The last component evaluates the successor's
    /// own admissible bound on demand — `None` for provably dead
    /// successors (interned but never enqueued), `Some(0)` when the
    /// heuristic is disabled — so implementations can evaluate it
    /// incrementally from the parent instead of having the driver
    /// recompute it from scratch. The thunk is only invoked when the
    /// relax actually improved a locally owned distance: most emitted
    /// successors are duplicates (or ship to a foreign shard, which
    /// re-evaluates on arrival), and their bound is never needed.
    fn expand(&self, key: &Self::Key, scratch: &mut Self::Scratch, emit: EmitFn<'_, Self::Key>);
    /// Drains the phase counters [`Domain::expand`] accumulated into
    /// `scratch` since the last call. The default reports nothing;
    /// domains that embed a [`crate::PhaseProf`] in their scratch
    /// override it so the drivers can aggregate hot-path accounting.
    fn take_phases(&self, _scratch: &mut Self::Scratch) -> PhaseStats {
        PhaseStats::default()
    }
    /// Upper bound on every `f` value (selects the frontier
    /// representation).
    fn max_priority(&self) -> u64;
    /// Owning shard of the canonical `key` whose packed-key hash is
    /// `hash`. Must be a pure, total function of the canonical state
    /// (same key → same shard on every call and every worker) — the
    /// distributed termination proof and duplicate detection rely on
    /// it. Defaults to the hash partition; solvers override it to
    /// route through a [`crate::engine::Partition`].
    #[inline]
    fn owner(&self, _key: &Self::Key, hash: u64, shards: usize) -> usize {
        shard_of(hash, shards)
    }
}

/// What a driver run produced: the optimal cost plus the root-to-goal
/// `(state, move)` path when solved, and the counters either way.
pub struct DriverOutcome<K> {
    /// `(optimal_cost, path)` where `path[i] = (state_before_move_i,
    /// move_i)` from the root to the goal.
    pub best: Option<(u64, Vec<(K, PackedMove)>)>,
    /// Aggregated search counters for this run.
    pub stats: SearchStats,
    /// Per-shard counters (empty for sequential runs).
    pub shards: Vec<ShardStats>,
    /// Why the search stopped.
    pub reason: StopReason,
    /// Phase-level hot-path accounting (summed across shards).
    pub phases: PhaseStats,
}

impl<K> DriverOutcome<K> {
    fn stopped(
        stats: SearchStats,
        shards: Vec<ShardStats>,
        reason: StopReason,
        phases: PhaseStats,
    ) -> Self {
        DriverOutcome {
            best: None,
            stats,
            shards,
            reason,
            phases,
        }
    }
}

/// Entry point: dispatches on `config.threads` (clamped to
/// `1..=MAX_THREADS`).
pub fn search<D: Domain>(domain: &D, config: &SearchConfig) -> DriverOutcome<D::Key> {
    let threads = config.threads.clamp(1, MAX_THREADS);
    // A weighted-A* probe for a feasible schedule seeds an incumbent:
    // the exact search then discards every successor whose f-value
    // provably cannot beat it, before paying the dominant cost of
    // hashing and interning it. When the probe's schedule turns out
    // optimal, the exact search never settles the `f == OPT` plateau
    // at all — exhausting `f < ub` proves the incumbent optimal and
    // the probe's own schedule is the witness. Only worthwhile when
    // the heuristic exists to guide the probe and compute f — a
    // baseline run keeps the unpruned search it is meant to measure.
    let incumbent = if config.heuristic {
        probe_upper_bound(domain, config)
    } else {
        None
    };
    if threads == 1 {
        sequential(domain, config, incumbent)
    } else {
        parallel(domain, config, threads, incumbent)
    }
}

/// A feasible schedule found by the upper-bound probe: its cost and
/// its full move path, kept so the exact search can return it as the
/// witness when it proves no strictly better schedule exists.
type Incumbent<K> = (u64, Vec<(K, PackedMove)>);

/// Heuristic inflation of the upper-bound probe, as a ratio:
/// `f = g + h·3/2`. Weighted A* with an admissible `h` returns a goal
/// within `3/2` of optimal while settling a small fraction of the
/// exact search's states.
const PROBE_WEIGHT_NUM: u64 = 3;
const PROBE_WEIGHT_DEN: u64 = 2;
/// Settled-state budget of the probe. The probe is a bet: if greedy
/// descent does not reach a goal quickly, give up and run the exact
/// search unpruned rather than burn a meaningful slice of its budget.
const PROBE_MAX_STATES: usize = 20_000;

/// [`Domain`] wrapper inflating the heuristic for the upper-bound
/// probe. Everything else delegates, so the probe reuses the exact
/// engine — same canonicalization, dominance pruning, and arena.
struct InflatedDomain<'a, D: Domain> {
    inner: &'a D,
}

impl<D: Domain> InflatedDomain<'_, D> {
    #[inline]
    fn inflate(h: u64) -> u64 {
        (h.saturating_mul(PROBE_WEIGHT_NUM)) / PROBE_WEIGHT_DEN
    }
}

impl<D: Domain> Domain for InflatedDomain<'_, D> {
    type Key = D::Key;
    type Scratch = D::Scratch;

    fn key_words(&self) -> usize {
        self.inner.key_words()
    }
    fn pack(&self, key: &Self::Key, out: &mut [u64]) {
        self.inner.pack(key, out);
    }
    fn unpack(&self, words: &[u64]) -> Self::Key {
        self.inner.unpack(words)
    }
    fn root(&self) -> Self::Key {
        self.inner.root()
    }
    fn is_goal(&self, key: &Self::Key) -> bool {
        self.inner.is_goal(key)
    }
    fn heuristic(&self, key: &Self::Key) -> Option<u64> {
        self.inner.heuristic(key).map(Self::inflate)
    }
    fn expand(&self, key: &Self::Key, scratch: &mut Self::Scratch, emit: EmitFn<'_, Self::Key>) {
        self.inner.expand(key, scratch, &mut |k2, c, mv, hv| {
            emit(k2, c, mv, &mut || hv().map(Self::inflate));
        });
    }
    fn take_phases(&self, scratch: &mut Self::Scratch) -> PhaseStats {
        self.inner.take_phases(scratch)
    }
    fn max_priority(&self) -> u64 {
        self.inner
            .max_priority()
            .saturating_mul(PROBE_WEIGHT_NUM)
            .saturating_add(PROBE_WEIGHT_DEN)
    }
    fn owner(&self, key: &Self::Key, hash: u64, shards: usize) -> usize {
        self.inner.owner(key, hash, shards)
    }
}

/// Runs weighted A* (the sequential engine over [`InflatedDomain`])
/// for *any* goal state and returns its cost and move path — a
/// feasible, not necessarily optimal, schedule. `None` when the probe
/// gives up (state budget, deadline, or an unsolvable instance).
///
/// The bound is correct by construction: the probe only follows real
/// [`Domain::expand`] edges from the root and `g` accumulates real
/// edge costs, so the distance of any goal it settles is the cost of
/// an actual schedule. The inflation only affects *which* goal greedy
/// descent reaches first.
fn probe_upper_bound<D: Domain>(domain: &D, config: &SearchConfig) -> Option<Incumbent<D::Key>> {
    let probe_config = SearchConfig {
        threads: 1,
        limits: SolveLimits {
            max_states: PROBE_MAX_STATES.min(config.limits.max_states),
            deadline: config.limits.deadline,
        },
        ..*config
    };
    let inflated = InflatedDomain { inner: domain };
    sequential(&inflated, &probe_config, None).best
}

// ---------------------------------------------------------------------
// Sequential driver
// ---------------------------------------------------------------------

fn sequential<D: Domain>(
    domain: &D,
    config: &SearchConfig,
    incumbent: Option<Incumbent<D::Key>>,
) -> DriverOutcome<D::Key> {
    let start = Instant::now();
    let kw = domain.key_words();
    let root = domain.root();
    let mut stats = SearchStats {
        threads: 1,
        ..SearchStats::default()
    };
    let Some(h0) = domain.heuristic(&root) else {
        // The start state is already dead: unsolvable.
        return DriverOutcome::stopped(
            stats,
            Vec::new(),
            StopReason::Exhausted,
            PhaseStats::default(),
        );
    };
    stats.h_root = h0;

    let mut arena = StateArena::new(kw);
    let mut frontier: Frontier<u32> = Frontier::new(domain.max_priority());
    stats.heap_fallback = matches!(frontier, Frontier::Heap(_));

    let mut wbuf = [0u64; MAX_KEY_WORDS];
    domain.pack(&root, &mut wbuf[..kw]);
    let (ridx, _) = arena.relax(&wbuf[..kw], hash_words(&wbuf[..kw]), 0, gid(0, 0), 0);
    debug_assert_eq!(ridx, 0, "root interns at index 0");
    frontier.push(h0, 0, 0);
    stats.pushed = 1;
    stats.frontier_peak = 1;

    let timing = phase_timing_enabled();
    let mut phases = PhaseStats::default();
    let mut expand_ns = 0u64;
    let mut scratch = D::Scratch::default();
    let ub = incumbent.as_ref().map(|&(u, _)| u);
    // The hot loop is allocation-free: successors are relaxed inline as
    // the domain emits them from its scratch buffers, with no
    // intermediate Vec.
    let mut best: Option<(u64, u64)> = None;
    let mut proved_incumbent = false;
    let reason = loop {
        let Some((f, idx, d)) = frontier.pop() else {
            // With an incumbent, exhausting every `f < ub` state IS the
            // optimality proof: the admissible bound keeps some state of
            // any strictly cheaper schedule enqueued until it is found.
            proved_incumbent = ub.is_some();
            break if proved_incumbent {
                StopReason::Solved
            } else {
                StopReason::Exhausted
            };
        };
        if let Some(ub) = ub {
            // The popped f is the frontier minimum, which lower-bounds
            // the cost of any schedule not yet found — reaching the
            // incumbent proves the incumbent optimal. (Pushes filter
            // `f >= ub`, so this triggers at most for the root.)
            if f >= ub {
                proved_incumbent = true;
                break StopReason::Solved;
            }
        }
        if arena.meta(idx).dist != d {
            stats.stale += 1;
            continue;
        }
        let key = domain.unpack(arena.key_words(idx));
        if domain.is_goal(&key) {
            best = Some((d, gid(0, idx)));
            break StopReason::Solved;
        }
        stats.settled += 1;
        if stats.settled > config.limits.max_states as u64 {
            break StopReason::StateLimit;
        }
        if let Some(dl) = config.limits.deadline {
            if start.elapsed() >= dl {
                break StopReason::Deadline;
            }
        }
        let t_exp = if timing { Some(Instant::now()) } else { None };
        domain.expand(&key, &mut scratch, &mut |k2, c, mv, hv| {
            phases.emitted += 1;
            let nd = d + c;
            // With a seeded incumbent the heuristic is evaluated
            // eagerly: a successor whose f provably cannot *beat* the
            // known feasible schedule is discarded before paying the
            // dominant cost of hashing and interning it. Dead
            // successors (`hv() == None`) are discarded the same way.
            let mut hval: Option<u64> = None;
            if let Some(ub) = ub {
                match hv() {
                    Some(hb) if nd + hb < ub => hval = Some(hb),
                    _ => {
                        phases.ub_pruned += 1;
                        return;
                    }
                }
            }
            let ti = if timing { Some(Instant::now()) } else { None };
            domain.pack(&k2, &mut wbuf[..kw]);
            let h = hash_words(&wbuf[..kw]);
            let (idx2, improved) = arena.relax(&wbuf[..kw], h, nd, gid(0, idx), mv);
            if let Some(t0) = ti {
                phases.hash_intern_ns += t0.elapsed().as_nanos() as u64;
            }
            if improved {
                if let Some(hv) = hval.or_else(hv) {
                    let tq = if timing { Some(Instant::now()) } else { None };
                    frontier.push(nd + hv, idx2, nd);
                    stats.pushed += 1;
                    stats.frontier_peak = stats.frontier_peak.max(frontier.len() as u64);
                    if let Some(t0) = tq {
                        phases.queue_ns += t0.elapsed().as_nanos() as u64;
                    }
                }
            }
        });
        if let Some(t0) = t_exp {
            expand_ns += t0.elapsed().as_nanos() as u64;
        }
    };
    stats.arena_states = arena.len() as u64;
    stats.arena_peak_bytes = arena.bytes();
    phases.merge(&domain.take_phases(&mut scratch));
    // Successor generation is the in-expand remainder: expand wall-clock
    // minus the phases timed individually (all of which run inside
    // expand or its emit callback).
    phases.succ_gen_ns = expand_ns.saturating_sub(phases.timed_ns());
    if proved_incumbent {
        let (d, path) = incumbent.expect("proved_incumbent implies an incumbent");
        return DriverOutcome {
            best: Some((d, path)),
            stats,
            shards: Vec::new(),
            reason: StopReason::Solved,
            phases,
        };
    }
    if let Some((d, goal_gid)) = best {
        let path = reconstruct_path(domain, &[&arena], goal_gid);
        return DriverOutcome {
            best: Some((d, path)),
            stats,
            shards: Vec::new(),
            reason: StopReason::Solved,
            phases,
        };
    }
    DriverOutcome::stopped(stats, Vec::new(), reason, phases)
}

/// Walks the parent chain from `goal_gid` back to the root (marked by a
/// self-loop parent) across the given shard arenas and returns the
/// forward `(state, move)` path.
fn reconstruct_path<D: Domain>(
    domain: &D,
    arenas: &[&StateArena],
    goal_gid: u64,
) -> Vec<(D::Key, PackedMove)> {
    let mut rev = Vec::new();
    let mut cur = goal_gid;
    loop {
        let m = arenas[gid_shard(cur)].meta(gid_idx(cur));
        if m.parent == cur {
            break; // root self-loop
        }
        let p = m.parent;
        rev.push((
            domain.unpack(arenas[gid_shard(p)].key_words(gid_idx(p))),
            m.mv,
        ));
        cur = p;
    }
    rev.reverse();
    rev
}

// ---------------------------------------------------------------------
// Parallel (hash-sharded) driver
// ---------------------------------------------------------------------

/// Frontier pops per worker iteration between inbox drains.
const POP_BATCH: usize = 32;
/// Capacity of each cross-shard SPSC ring (blocks; times
/// [`BLOCK_CAP`] messages).
const CHAN_CAP: usize = 1 << 7;
/// Messages per ring block: a full block spans eight cache lines, so
/// the per-slot atomic hand-off cost is amortized over eight states.
const BLOCK_CAP: usize = 8;
/// Per-worker cap on buffered foreign states eligible for speculative
/// expansion. Small: it is a starvation stopgap, not a second frontier.
const SPEC_CAP: usize = 64;

const STATUS_RUNNING: u64 = 0;
const STATUS_DONE: u64 = 1;
const STATUS_STATE_LIMIT: u64 = 2;
const STATUS_DEADLINE: u64 = 3;

/// A cross-shard successor hand-off: the packed key plus its tentative
/// relaxation. `Copy`, fixed-size, so the SPSC ring can move it by
/// bitwise read.
#[derive(Clone, Copy)]
struct Msg {
    words: [u64; MAX_KEY_WORDS],
    dist: u64,
    parent: u64,
    mv: PackedMove,
}

const EMPTY_MSG: Msg = Msg {
    words: [0; MAX_KEY_WORDS],
    dist: 0,
    parent: 0,
    mv: 0,
};

/// A batch of [`Msg`]s moved through the ring as one slot: senders fill
/// blocks in per-destination out-buffers and flush on fill or frontier
/// exhaustion, so the quiescence counters count blocks, not messages.
#[derive(Clone, Copy)]
struct MsgBlock {
    len: u32,
    msgs: [Msg; BLOCK_CAP],
}

const EMPTY_BLOCK: MsgBlock = MsgBlock {
    len: 0,
    msgs: [EMPTY_MSG; BLOCK_CAP],
};

/// State shared by every worker of one parallel solve.
struct Shared {
    /// Best goal distance found so far (`u64::MAX` until the first
    /// goal); updated only under the `goal` lock, so it decreases
    /// monotonically.
    incumbent: AtomicU64,
    /// `(dist, gid)` of the best goal state.
    goal: Mutex<Option<(u64, u64)>>,
    /// Global settled-state counter (the `max_states` budget).
    settled: AtomicU64,
    /// Blocks pushed to any ring (incremented *before* the push).
    sent: AtomicU64,
    /// Blocks fully processed (incremented *after* every message in the
    /// block has been relaxed).
    received: AtomicU64,
    /// Bitmask of workers currently idle.
    idle: AtomicU64,
    /// `STATUS_*` word; leaves `STATUS_RUNNING` exactly once.
    status: AtomicU64,
}

impl Shared {
    fn new() -> Self {
        Shared {
            incumbent: AtomicU64::new(u64::MAX),
            goal: Mutex::new(None),
            settled: AtomicU64::new(0),
            sent: AtomicU64::new(0),
            received: AtomicU64::new(0),
            idle: AtomicU64::new(0),
            status: AtomicU64::new(STATUS_RUNNING),
        }
    }

    /// First abort cause wins; later ones are ignored.
    fn abort(&self, status: u64) {
        let _ = self.status.compare_exchange(
            STATUS_RUNNING,
            status,
            Ordering::SeqCst,
            Ordering::SeqCst,
        );
    }
}

/// What each worker hands back after the join.
struct WorkerResult {
    arena: StateArena,
    shard: ShardStats,
    stale: u64,
    frontier_peak: u64,
    heap_fallback: bool,
    phases: PhaseStats,
}

struct Worker<'a, D: Domain> {
    me: usize,
    threads: usize,
    kw: usize,
    domain: &'a D,
    shared: &'a Shared,
    /// Full `threads x threads` ring matrix, indexed `from * threads +
    /// to`; this worker consumes column `me` and produces row `me`.
    chans: &'a [Spsc<MsgBlock>],
    start: Instant,
    max_states: u64,
    deadline: Option<std::time::Duration>,
    arena: StateArena,
    frontier: Frontier<u32>,
    scratch: D::Scratch,
    timing: bool,
    phases: PhaseStats,
    expand_ns: u64,
    /// Per-destination out-buffers; `out[to]` fills until [`BLOCK_CAP`]
    /// then flushes into the ring (`out[me]` stays unused).
    out: Vec<MsgBlock>,
    /// Bounded stash of foreign successors for speculative expansion
    /// (every entry was *also* sent to its owner).
    spec: Vec<Msg>,
    settled: u64,
    pushed: u64,
    stale: u64,
    sent: u64,
    send_blocks: u64,
    local_succs: u64,
    received: u64,
    dup_msgs: u64,
    foreign_expansions: u64,
    frontier_peak: u64,
}

impl<'a, D: Domain> Worker<'a, D> {
    /// Relaxes an owned state given its packed words and hash; enqueues
    /// it when the distance improved, the heuristic finds it alive, and
    /// its `f` still beats the incumbent. Returns whether the distance
    /// was created or improved. Used for states arriving over channels
    /// or the speculation stash, where no parent heuristic context
    /// exists — the bound is evaluated from scratch (and lazily, only
    /// on improvement). Runs outside `expand`, so it is deliberately
    /// untimed: the phase profile accounts the expansion path.
    #[inline]
    fn relax_owned(
        &mut self,
        words: &[u64],
        hash: u64,
        dist: u64,
        parent: u64,
        mv: PackedMove,
    ) -> bool {
        let (idx, improved) = self.arena.relax(words, hash, dist, parent, mv);
        if improved {
            let key = self.domain.unpack(words);
            self.phases.heur_full_evals += 1;
            if let Some(hv) = self.domain.heuristic(&key) {
                let f = dist + hv;
                if f < self.shared.incumbent.load(Ordering::Relaxed) {
                    self.frontier.push(f, idx, dist);
                    self.pushed += 1;
                    self.frontier_peak = self.frontier_peak.max(self.frontier.len() as u64);
                }
            }
        }
        improved
    }

    /// [`Worker::relax_owned`] for locally generated successors, whose
    /// admissible bound is evaluated lazily — the domain's incremental
    /// thunk `hv` runs only when the distance actually improved.
    #[inline]
    fn relax_owned_h(
        &mut self,
        words: &[u64],
        hash: u64,
        dist: u64,
        parent: u64,
        mv: PackedMove,
        hv: &mut dyn FnMut() -> Option<u64>,
    ) {
        let ti = if self.timing {
            Some(Instant::now())
        } else {
            None
        };
        let (idx, improved) = self.arena.relax(words, hash, dist, parent, mv);
        if let Some(t0) = ti {
            self.phases.hash_intern_ns += t0.elapsed().as_nanos() as u64;
        }
        if improved {
            if let Some(hv) = hv() {
                let f = dist + hv;
                if f < self.shared.incumbent.load(Ordering::Relaxed) {
                    let tq = if self.timing {
                        Some(Instant::now())
                    } else {
                        None
                    };
                    self.frontier.push(f, idx, dist);
                    self.pushed += 1;
                    self.frontier_peak = self.frontier_peak.max(self.frontier.len() as u64);
                    if let Some(t0) = tq {
                        self.phases.queue_ns += t0.elapsed().as_nanos() as u64;
                    }
                }
            }
        }
    }

    /// Drains every inbox once; returns whether any block arrived.
    fn drain_inboxes(&mut self) -> bool {
        let mut any = false;
        for from in 0..self.threads {
            if from == self.me {
                continue;
            }
            while let Some(blk) = self.chans[from * self.threads + self.me].try_pop() {
                for j in 0..blk.len as usize {
                    let m = blk.msgs[j];
                    let h = hash_words(&m.words[..self.kw]);
                    if !self.relax_owned(&m.words[..self.kw], h, m.dist, m.parent, m.mv) {
                        self.dup_msgs += 1;
                    }
                    self.received += 1;
                }
                self.shared.received.fetch_add(1, Ordering::SeqCst);
                any = true;
            }
        }
        any
    }

    /// Whether any inbox currently holds a block.
    fn has_inbox_msgs(&self) -> bool {
        (0..self.threads)
            .any(|from| from != self.me && !self.chans[from * self.threads + self.me].is_empty())
    }

    /// Buffers a successor for its owning shard, flushing the block
    /// when full, and stashes a copy for speculative expansion.
    fn buffer_send(&mut self, to: usize, msg: Msg) {
        self.sent += 1;
        self.spec_offer(msg);
        let blk = &mut self.out[to];
        blk.msgs[blk.len as usize] = msg;
        blk.len += 1;
        if blk.len as usize == BLOCK_CAP {
            self.flush(to);
        }
    }

    /// Pushes `out[to]` into the ring, draining our own inboxes while
    /// the target ring is full (receiving only relaxes locally and
    /// never sends, so this cannot deadlock).
    fn flush(&mut self, to: usize) {
        if self.out[to].len == 0 {
            return;
        }
        let blk = std::mem::replace(&mut self.out[to], EMPTY_BLOCK);
        self.send_blocks += 1;
        self.shared.sent.fetch_add(1, Ordering::SeqCst);
        loop {
            if self.chans[self.me * self.threads + to].try_push(blk) {
                return;
            }
            if self.shared.status.load(Ordering::Acquire) != STATUS_RUNNING {
                // Aborting: the block may be dropped, nobody will
                // look at the counters again.
                return;
            }
            if !self.drain_inboxes() {
                std::hint::spin_loop();
            }
        }
    }

    /// Flushes every non-empty out-buffer. Must run before advertising
    /// idle: the quiescence counters only see flushed blocks.
    fn flush_all(&mut self) {
        for to in 0..self.threads {
            if to != self.me {
                self.flush(to);
            }
        }
    }

    /// Stashes a foreign successor for possible speculative expansion,
    /// keeping the `SPEC_CAP` best (lowest-distance) entries.
    fn spec_offer(&mut self, msg: Msg) {
        if msg.dist >= self.shared.incumbent.load(Ordering::Relaxed) {
            return;
        }
        if self.spec.len() < SPEC_CAP {
            self.spec.push(msg);
            return;
        }
        let (worst, wd) = self
            .spec
            .iter()
            .enumerate()
            .map(|(i, m)| (i, m.dist))
            .max_by_key(|&(_, d)| d)
            .expect("spec buffer non-empty at cap");
        if msg.dist < wd {
            self.spec[worst] = msg;
        }
    }

    /// Speculatively expands buffered foreign work: promotes the
    /// best-distance stashed state into the local arena and frontier.
    /// Returns `true` when something was promoted (the main loop should
    /// go back to popping). Safe to drain to empty before idling —
    /// every entry was also delivered to its owner.
    fn promote_spec(&mut self) -> bool {
        while !self.spec.is_empty() {
            let best = self
                .spec
                .iter()
                .enumerate()
                .min_by_key(|(_, m)| m.dist)
                .map(|(i, _)| i)
                .expect("non-empty");
            let m = self.spec.swap_remove(best);
            if m.dist >= self.shared.incumbent.load(Ordering::Relaxed) {
                continue;
            }
            let h = hash_words(&m.words[..self.kw]);
            if self.relax_owned(&m.words[..self.kw], h, m.dist, m.parent, m.mv) {
                self.foreign_expansions += 1;
                return true;
            }
        }
        false
    }

    /// Records a popped goal state, lowering the shared incumbent.
    fn offer_goal(&self, dist: u64, g: u64) {
        let mut best = self.shared.goal.lock().unwrap();
        if best.is_none_or(|(bd, _)| dist < bd) {
            *best = Some((dist, g));
            self.shared.incumbent.store(dist, Ordering::SeqCst);
        }
    }

    /// Idle protocol: advertise idleness, watch for new work, and
    /// attempt quiescence detection. Returns `true` to terminate.
    fn idle_protocol(&mut self) -> bool {
        let my_bit = 1u64 << self.me;
        let full_mask = if self.threads == 64 {
            u64::MAX
        } else {
            (1u64 << self.threads) - 1
        };
        self.shared.idle.fetch_or(my_bit, Ordering::SeqCst);
        loop {
            if self.shared.status.load(Ordering::Acquire) != STATUS_RUNNING {
                return true;
            }
            let inc = self.shared.incumbent.load(Ordering::SeqCst);
            let has_local = self.frontier.peek_priority().is_some_and(|f| f < inc);
            if self.has_inbox_msgs() || has_local {
                self.shared.idle.fetch_and(!my_bit, Ordering::SeqCst);
                return false;
            }
            // Double-read quiescence check: no message can be in flight
            // between two observations of equal monotone counters with
            // every worker idle throughout.
            let s1 = self.shared.sent.load(Ordering::SeqCst);
            let r1 = self.shared.received.load(Ordering::SeqCst);
            if s1 == r1 && self.shared.idle.load(Ordering::SeqCst) == full_mask {
                let s2 = self.shared.sent.load(Ordering::SeqCst);
                if s2 == s1 && self.shared.idle.load(Ordering::SeqCst) == full_mask {
                    self.shared.abort(STATUS_DONE);
                    return true;
                }
            }
            std::hint::spin_loop();
            std::thread::yield_now();
        }
    }

    fn run(mut self) -> WorkerResult {
        let domain = self.domain;
        let kw = self.kw;
        'outer: while self.shared.status.load(Ordering::Acquire) == STATUS_RUNNING {
            let mut progress = self.drain_inboxes();
            for _ in 0..POP_BATCH {
                let inc = self.shared.incumbent.load(Ordering::Relaxed);
                let Some((f, idx, d)) = self.frontier.pop() else {
                    break;
                };
                progress = true;
                if self.arena.meta(idx).dist != d {
                    self.stale += 1;
                    continue;
                }
                if f >= inc {
                    // Can no longer beat the incumbent; with the
                    // monotone incumbent this holds forever. Discard.
                    continue;
                }
                let key = domain.unpack(self.arena.key_words(idx));
                if domain.is_goal(&key) {
                    self.offer_goal(d, gid(self.me, idx));
                    continue;
                }
                self.settled += 1;
                let g = self.shared.settled.fetch_add(1, Ordering::Relaxed) + 1;
                if g > self.max_states {
                    self.shared.abort(STATUS_STATE_LIMIT);
                    break 'outer;
                }
                if let Some(dl) = self.deadline {
                    if self.start.elapsed() >= dl {
                        self.shared.abort(STATUS_DEADLINE);
                        break 'outer;
                    }
                }
                let parent = gid(self.me, idx);
                // Take the scratch out of `self` so the emit closure can
                // borrow the rest of the worker mutably; successors are
                // relaxed or shipped inline, with no intermediate Vec.
                let mut scratch = std::mem::take(&mut self.scratch);
                let t_exp = if self.timing {
                    Some(Instant::now())
                } else {
                    None
                };
                domain.expand(&key, &mut scratch, &mut |k2, c, mv, hv| {
                    self.phases.emitted += 1;
                    let nd = d + c;
                    if nd >= self.shared.incumbent.load(Ordering::Relaxed) {
                        return;
                    }
                    let ti = if self.timing {
                        Some(Instant::now())
                    } else {
                        None
                    };
                    let mut wbuf = [0u64; MAX_KEY_WORDS];
                    domain.pack(&k2, &mut wbuf[..kw]);
                    let h = hash_words(&wbuf[..kw]);
                    let owner = domain.owner(&k2, h, self.threads);
                    if let Some(t0) = ti {
                        self.phases.hash_intern_ns += t0.elapsed().as_nanos() as u64;
                    }
                    if owner == self.me {
                        self.local_succs += 1;
                        self.relax_owned_h(&wbuf[..kw], h, nd, parent, mv, hv);
                    } else {
                        self.buffer_send(
                            owner,
                            Msg {
                                words: wbuf,
                                dist: nd,
                                parent,
                                mv,
                            },
                        );
                    }
                });
                if let Some(t0) = t_exp {
                    self.expand_ns += t0.elapsed().as_nanos() as u64;
                }
                self.scratch = scratch;
            }
            if !progress {
                // Local frontier exhausted: ship partial blocks so no
                // work hides in an out-buffer, then look for incoming
                // work, then fall back to speculative expansion before
                // attempting quiescence.
                self.flush_all();
                if self.drain_inboxes() || self.promote_spec() {
                    continue;
                }
                if self.idle_protocol() {
                    break;
                }
            }
        }
        self.phases.merge(&domain.take_phases(&mut self.scratch));
        self.phases.succ_gen_ns = self.expand_ns.saturating_sub(self.phases.timed_ns());
        WorkerResult {
            shard: ShardStats {
                shard: self.me as u64,
                settled: self.settled,
                pushed: self.pushed,
                sent: self.sent,
                send_blocks: self.send_blocks,
                local_succs: self.local_succs,
                received: self.received,
                dup_msgs: self.dup_msgs,
                foreign_expansions: self.foreign_expansions,
                arena_states: self.arena.len() as u64,
                arena_bytes: self.arena.bytes(),
            },
            stale: self.stale,
            frontier_peak: self.frontier_peak,
            heap_fallback: matches!(self.frontier, Frontier::Heap(_)),
            phases: self.phases,
            arena: self.arena,
        }
    }
}

fn parallel<D: Domain>(
    domain: &D,
    config: &SearchConfig,
    threads: usize,
    incumbent: Option<Incumbent<D::Key>>,
) -> DriverOutcome<D::Key> {
    let start = Instant::now();
    let kw = domain.key_words();
    let root = domain.root();
    let mut stats = SearchStats {
        threads: threads as u64,
        ..SearchStats::default()
    };
    let Some(h0) = domain.heuristic(&root) else {
        return DriverOutcome::stopped(
            stats,
            Vec::new(),
            StopReason::Exhausted,
            PhaseStats::default(),
        );
    };
    stats.h_root = h0;

    let mut root_words = [0u64; MAX_KEY_WORDS];
    domain.pack(&root, &mut root_words[..kw]);
    let root_hash = hash_words(&root_words[..kw]);
    let root_owner = domain.owner(&root, root_hash, threads);

    let shared = Shared::new();
    if let Some((ub, _)) = incumbent {
        // Seed the shared incumbent exactly as if a goal of cost `ub`
        // had already been offered: every push and pop keeps only
        // `f < ub`, which no strictly better schedule violates. A
        // worker that pops a real goal cheaper than `ub` records it in
        // the goal slot as usual; quiescing without one proves the
        // probe's schedule optimal and it becomes the witness.
        shared.incumbent.store(ub, Ordering::SeqCst);
    }
    let chans: Vec<Spsc<MsgBlock>> = (0..threads * threads)
        .map(|_| Spsc::new(CHAN_CAP))
        .collect();
    let max_states = config.limits.max_states as u64;
    let deadline = config.limits.deadline;
    let max_priority = domain.max_priority();

    let results: Vec<WorkerResult> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|me| {
                let shared = &shared;
                let chans = &chans[..];
                s.spawn(move || {
                    let mut w = Worker {
                        me,
                        threads,
                        kw,
                        domain,
                        shared,
                        chans,
                        start,
                        max_states,
                        deadline,
                        arena: StateArena::new(kw),
                        frontier: Frontier::new(max_priority),
                        scratch: D::Scratch::default(),
                        timing: phase_timing_enabled(),
                        phases: PhaseStats::default(),
                        expand_ns: 0,
                        out: vec![EMPTY_BLOCK; threads],
                        spec: Vec::with_capacity(SPEC_CAP),
                        settled: 0,
                        pushed: 0,
                        stale: 0,
                        sent: 0,
                        send_blocks: 0,
                        local_succs: 0,
                        received: 0,
                        dup_msgs: 0,
                        foreign_expansions: 0,
                        frontier_peak: 0,
                    };
                    if me == root_owner {
                        let (ridx, _) =
                            w.arena
                                .relax(&root_words[..kw], root_hash, 0, gid(me, 0), 0);
                        debug_assert_eq!(ridx, 0);
                        w.frontier.push(h0, 0, 0);
                        w.pushed = 1;
                        w.frontier_peak = 1;
                    }
                    w.run()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("solver worker panicked"))
            .collect()
    });

    let mut shards = Vec::with_capacity(threads);
    let mut phases = PhaseStats::default();
    for r in &results {
        phases.merge(&r.phases);
        stats.settled += r.shard.settled;
        stats.pushed += r.shard.pushed;
        stats.stale += r.stale;
        stats.frontier_peak += r.frontier_peak;
        stats.heap_fallback |= r.heap_fallback;
        stats.cross_sends += r.shard.sent;
        stats.send_blocks += r.shard.send_blocks;
        stats.local_succs += r.shard.local_succs;
        stats.foreign_expansions += r.shard.foreign_expansions;
        stats.arena_states += r.shard.arena_states;
        stats.arena_peak_bytes += r.shard.arena_bytes;
        shards.push(r.shard);
    }

    match shared.status.load(Ordering::SeqCst) {
        STATUS_STATE_LIMIT => DriverOutcome::stopped(stats, shards, StopReason::StateLimit, phases),
        STATUS_DEADLINE => DriverOutcome::stopped(stats, shards, StopReason::Deadline, phases),
        _ => {
            let goal = *shared.goal.lock().unwrap();
            if let Some((dist, ggid)) = goal {
                let arenas: Vec<&StateArena> = results.iter().map(|r| &r.arena).collect();
                let path = reconstruct_path(domain, &arenas, ggid);
                DriverOutcome {
                    best: Some((dist, path)),
                    stats,
                    shards,
                    reason: StopReason::Solved,
                    phases,
                }
            } else if let Some((d, path)) = incumbent {
                // Quiesced with every `f < ub` state exhausted and no
                // cheaper goal found: the probe's schedule is optimal.
                DriverOutcome {
                    best: Some((d, path)),
                    stats,
                    shards,
                    reason: StopReason::Solved,
                    phases,
                }
            } else {
                DriverOutcome::stopped(stats, shards, StopReason::Exhausted, phases)
            }
        }
    }
}
