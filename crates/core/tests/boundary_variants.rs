//! The §3.1 boundary-convention variants: sources start blue (inputs in
//! slow memory) and/or sinks must end blue (outputs written back) — the
//! original Hong–Kung setting.

use rbp_core::{solve_spp, CostModel, SolveLimits, SppInstance, SppMove, SppState, SppVariant};
use rbp_dag::{dag_from_edges, generators, NodeId};

fn v(i: u32) -> NodeId {
    NodeId(i)
}

fn instance<'a>(dag: &'a rbp_dag::Dag, r: usize, g: u64, variant: SppVariant) -> SppInstance<'a> {
    SppInstance {
        dag,
        r,
        model: CostModel::spp_io_only(g),
        variant,
    }
}

#[test]
fn initial_state_has_blue_sources() {
    let dag = dag_from_edges(3, &[(0, 2), (1, 2)]);
    let s = SppState::initial_for(&dag, SppVariant::hong_kung());
    assert!(s.blue.contains(v(0)));
    assert!(s.blue.contains(v(1)));
    assert!(!s.blue.contains(v(2)));
    let base = SppState::initial_for(&dag, SppVariant::base());
    assert!(base.blue.is_empty());
}

#[test]
fn sources_can_be_loaded_instead_of_computed() {
    let dag = dag_from_edges(2, &[(0, 1)]);
    let inst = instance(&dag, 2, 1, SppVariant::hong_kung());
    let cost = rbp_core::spp::strategy::validate(
        &inst,
        &[
            SppMove::Load(v(0)),
            SppMove::Compute(v(1)),
            SppMove::Store(v(1)),
        ],
    )
    .unwrap();
    assert_eq!(cost.loads, 1);
    assert_eq!(cost.stores, 1);
    assert_eq!(cost.computes, 1);
}

#[test]
fn sinks_need_blue_rejects_red_only_terminal() {
    let dag = dag_from_edges(2, &[(0, 1)]);
    let inst = instance(&dag, 2, 1, SppVariant::hong_kung());
    let err =
        rbp_core::spp::strategy::validate(&inst, &[SppMove::Load(v(0)), SppMove::Compute(v(1))])
            .unwrap_err();
    assert!(matches!(
        err.kind,
        rbp_core::spp::SppErrorKind::NotTerminal(_)
    ));
}

#[test]
fn blue_source_that_is_also_a_sink_is_already_done() {
    let dag = dag_from_edges(1, &[]);
    let inst = instance(&dag, 1, 1, SppVariant::hong_kung());
    let cost = rbp_core::spp::strategy::validate(&inst, &[]).unwrap();
    assert_eq!(cost, rbp_core::Cost::zero());
}

#[test]
fn sources_are_data_not_computable() {
    let dag = dag_from_edges(2, &[(0, 1)]);
    let inst = instance(&dag, 2, 1, SppVariant::hong_kung());
    let err = rbp_core::spp::strategy::validate(&inst, &[SppMove::Compute(v(0))]).unwrap_err();
    assert_eq!(
        err.kind,
        rbp_core::spp::SppErrorKind::SourceNotComputable(v(0))
    );
}

#[test]
fn exact_solver_chain_under_hong_kung() {
    // Chain of 3: load input (g), compute the middle and the sink, store
    // the sink (g) — minimum I/O is 2.
    let dag = generators::chain(3);
    let inst = instance(&dag, 2, 1, SppVariant::hong_kung());
    let sol = solve_spp(&inst, SolveLimits::default()).unwrap();
    assert_eq!(sol.cost.io_steps(), 2);
    assert_eq!(sol.cost.computes, 2, "the source is loaded, not computed");
    // The witness validates under the same variant.
    assert!(sol.strategy.validate(&inst).is_ok());
}

#[test]
fn exact_solver_base_vs_hong_kung_costs() {
    // Base variant: everything computable for free, no forced writes.
    let dag = generators::chain(3);
    let base = solve_spp(
        &instance(&dag, 2, 1, SppVariant::base()),
        SolveLimits::default(),
    )
    .unwrap();
    assert_eq!(base.cost.io_steps(), 0);
    let hk = solve_spp(
        &instance(&dag, 2, 1, SppVariant::hong_kung()),
        SolveLimits::default(),
    )
    .unwrap();
    assert!(hk.cost.io_steps() > base.cost.io_steps());
}

#[test]
fn hong_kung_fft_bound_sanity() {
    // On the 4-point FFT with s = 3, the exact Hong–Kung-variant minimum
    // I/O is at least inputs + outputs = 8 (every input loaded, every
    // output stored).
    let dag = generators::fft(2);
    let inst = instance(&dag, 3, 1, SppVariant::hong_kung());
    let sol = solve_spp(&inst, SolveLimits::states(4_000_000)).unwrap();
    assert!(
        sol.cost.io_steps() >= 8,
        "io {} below the trivial input/output bound",
        sol.cost.io_steps()
    );
}

#[test]
fn sources_start_blue_alone_and_sinks_blue_alone() {
    let dag = generators::chain(2);
    // Only sources blue: no store needed at the end.
    let only_sources = SppVariant {
        sources_start_blue: true,
        ..SppVariant::default()
    };
    let sol = solve_spp(&instance(&dag, 2, 1, only_sources), SolveLimits::default()).unwrap();
    assert_eq!(sol.cost.stores, 0);
    // Only sinks blue: source computed for free, one store at the end.
    let only_sinks = SppVariant {
        sinks_need_blue: true,
        ..SppVariant::default()
    };
    let sol2 = solve_spp(&instance(&dag, 2, 1, only_sinks), SolveLimits::default()).unwrap();
    assert_eq!(sol2.cost.stores, 1);
    assert_eq!(sol2.cost.loads, 0);
}
