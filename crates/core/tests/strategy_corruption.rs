//! Corruption fuzzing for the MPP validator.
//!
//! Starts from provably valid strategies (a slack baseline: load inputs,
//! compute, store, clean up — one node at a time), then applies targeted
//! random corruptions — drop a load, reorder a dependent compute, evict
//! a needed red pebble, overfill fast memory, drop a store that is later
//! loaded, duplicate I/O, strip a sink's pebbles, mangle a shaded
//! selection — and asserts `mpp::strategy::validate` rejects every
//! mutant with the *specific* [`MppErrorKind`] variant that corruption
//! must produce. Site choice is randomized through the seeded rbp-util
//! RNG, so each run explores different mutants deterministically.

use rbp_core::rbp_dag::{generators, Dag, NodeId};
use rbp_core::{validate_mpp, MppErrorKind, MppInstance, MppMove, Pebble};
use rbp_util::Rng;

/// The slack baseline: processors round-robin over the topological
/// order; each node's inputs are loaded fresh, the value is computed,
/// stored, and every red involved is removed. Ends with every value
/// blue and no reds — terminal, and maximally corruptible (every load,
/// store, and remove is load-bearing).
fn baseline(dag: &Dag, k: usize) -> Vec<MppMove> {
    let mut moves = Vec::new();
    for (i, &v) in dag.topo().order().iter().enumerate() {
        let p = i % k;
        for &u in dag.preds(v) {
            moves.push(MppMove::load1(p, u));
        }
        moves.push(MppMove::compute1(p, v));
        moves.push(MppMove::store1(p, v));
        for &u in dag.preds(v) {
            moves.push(MppMove::Remove(Pebble::Red(p, u)));
        }
        moves.push(MppMove::Remove(Pebble::Red(p, v)));
    }
    moves
}

/// Indices of singleton loads in `moves`.
fn load_sites(moves: &[MppMove]) -> Vec<usize> {
    (0..moves.len())
        .filter(|&i| matches!(moves[i], MppMove::Load(_)))
        .collect()
}

/// `(index, proc, node)` of the singleton load at `i`.
fn load_at(moves: &[MppMove], i: usize) -> (usize, NodeId) {
    match &moves[i] {
        MppMove::Load(b) => (b[0].0, b[0].1),
        _ => unreachable!("site index points at a load"),
    }
}

/// One corruption applied to a copy of the baseline, plus the exact
/// error variant the validator must report for it.
struct Mutant {
    name: &'static str,
    moves: Vec<MppMove>,
    check: Box<dyn Fn(&MppErrorKind) -> bool>,
}

/// Builds every applicable corruption of `moves` (sites picked through
/// `rng`). Skips corruption kinds whose preconditions the instance
/// cannot meet (e.g. `DuplicateVertex` needs `k ≥ 2`).
#[allow(clippy::too_many_lines)]
fn corruptions(dag: &Dag, inst: &MppInstance, moves: &[MppMove], rng: &mut Rng) -> Vec<Mutant> {
    let k = inst.k;
    let r = inst.r;
    let n = dag.n();
    let loads = load_sites(moves);
    let mut out: Vec<Mutant> = Vec::new();
    let mut push = |name, moves, check: Box<dyn Fn(&MppErrorKind) -> bool>| {
        out.push(Mutant { name, moves, check });
    };

    // 1. Drop a load: the dependent compute on the same shade lacks it.
    if !loads.is_empty() {
        let i = loads[rng.index(loads.len())];
        let (p, u) = load_at(moves, i);
        let mut m = moves.to_vec();
        m.remove(i);
        push(
            "drop-load",
            m,
            Box::new(move |e| {
                matches!(e, MppErrorKind::MissingInput { proc, missing, .. }
                    if *proc == p && *missing == u)
            }),
        );
    }

    // 2. Reorder a dependent compute before its own input loads.
    let dependents: Vec<usize> = (0..moves.len())
        .filter(|&i| match &moves[i] {
            MppMove::Compute(b) => !dag.preds(b[0].1).is_empty(),
            _ => false,
        })
        .collect();
    if !dependents.is_empty() {
        let i = dependents[rng.index(dependents.len())];
        let v = match &moves[i] {
            MppMove::Compute(b) => b[0].1,
            _ => unreachable!(),
        };
        let mut m = moves.to_vec();
        let mv = m.remove(i);
        // The baseline emits the node's loads immediately before it.
        m.insert(i - dag.preds(v).len(), mv);
        push(
            "reorder-compute",
            m,
            Box::new(move |e| matches!(e, MppErrorKind::MissingInput { node, .. } if *node == v)),
        );
    }

    // 3. Evict a needed red right after it is loaded.
    if !loads.is_empty() {
        let i = loads[rng.index(loads.len())];
        let (p, u) = load_at(moves, i);
        let mut m = moves.to_vec();
        m.insert(i + 1, MppMove::Remove(Pebble::Red(p, u)));
        push(
            "evict-needed-red",
            m,
            Box::new(move |e| {
                matches!(e, MppErrorKind::MissingInput { proc, missing, .. }
                    if *proc == p && *missing == u)
            }),
        );
    }

    // 4. Overfill fast memory: r + 1 distinct loads onto one shade (the
    //    baseline ends with every value blue and every shade empty).
    if n > r {
        let mut m = moves.to_vec();
        for v in dag.topo().order().iter().take(r + 1) {
            m.push(MppMove::load1(0, *v));
        }
        push(
            "overfill-memory",
            m,
            Box::new(
                move |e| matches!(e, MppErrorKind::MemoryExceeded { proc: 0, r: got } if *got == r),
            ),
        );
    }

    // 5. Drop the store of a value that is loaded later.
    let stored_then_loaded: Vec<(usize, NodeId)> = (0..moves.len())
        .filter_map(|i| match &moves[i] {
            MppMove::Store(b) if !dag.succs(b[0].1).is_empty() => Some((i, b[0].1)),
            _ => None,
        })
        .collect();
    if !stored_then_loaded.is_empty() {
        let (i, u) = stored_then_loaded[rng.index(stored_then_loaded.len())];
        let mut m = moves.to_vec();
        m.remove(i);
        push(
            "drop-store-later-loaded",
            m,
            Box::new(move |e| matches!(e, MppErrorKind::LoadWithoutBlue(x) if *x == u)),
        );
    }

    // 6. Drop a sink's store: its red is cleaned up afterwards, so the
    //    final configuration leaves the sink bare.
    let sink_stores: Vec<(usize, NodeId)> = (0..moves.len())
        .filter_map(|i| match &moves[i] {
            MppMove::Store(b) if dag.succs(b[0].1).is_empty() => Some((i, b[0].1)),
            _ => None,
        })
        .collect();
    if !sink_stores.is_empty() {
        let (i, s) = sink_stores[rng.index(sink_stores.len())];
        let mut m = moves.to_vec();
        m.remove(i);
        push(
            "drop-sink-store",
            m,
            Box::new(move |e| matches!(e, MppErrorKind::NotTerminal(x) if *x == s)),
        );
    }

    // 7./8. Duplicate a load / a store: the pebble already exists.
    if !loads.is_empty() {
        let i = loads[rng.index(loads.len())];
        let (_, u) = load_at(moves, i);
        let mut m = moves.to_vec();
        m.insert(i + 1, m[i].clone());
        push(
            "duplicate-load",
            m,
            Box::new(move |e| matches!(e, MppErrorKind::AlreadyPebbled(x) if *x == u)),
        );
    }
    let stores: Vec<(usize, NodeId)> = (0..moves.len())
        .filter_map(|i| match &moves[i] {
            MppMove::Store(b) => Some((i, b[0].1)),
            _ => None,
        })
        .collect();
    {
        let (i, v) = stores[rng.index(stores.len())];
        let mut m = moves.to_vec();
        m.insert(i + 1, m[i].clone());
        push(
            "duplicate-store",
            m,
            Box::new(move |e| matches!(e, MppErrorKind::AlreadyPebbled(x) if *x == v)),
        );
    }

    // 9. Strip a sink's last pebble at the very end.
    {
        let sinks = dag.sinks();
        let s = sinks[rng.index(sinks.len())];
        let mut m = moves.to_vec();
        m.push(MppMove::Remove(Pebble::Blue(s)));
        push(
            "strip-sink-pebble",
            m,
            Box::new(move |e| matches!(e, MppErrorKind::NotTerminal(x) if *x == s)),
        );
    }

    // 10. Remove a pebble that is not on the board.
    {
        let v = NodeId(rng.index(n) as u32);
        let mut m = moves.to_vec();
        m.insert(0, MppMove::Remove(Pebble::Red(0, v)));
        push(
            "remove-absent",
            m,
            Box::new(
                move |e| matches!(e, MppErrorKind::RemoveAbsent(Pebble::Red(0, x)) if *x == v),
            ),
        );
    }

    // 11. Store a value the shade does not hold.
    {
        let v = NodeId(rng.index(n) as u32);
        let mut m = moves.to_vec();
        m.insert(0, MppMove::store1(0, v));
        push(
            "store-without-red",
            m,
            Box::new(
                move |e| matches!(e, MppErrorKind::StoreWithoutRed { proc: 0, node } if *node == v),
            ),
        );
    }

    // 12.–15. Mangle a shaded selection: duplicate processor, duplicate
    //         vertex, out-of-range processor, empty batch.
    if !loads.is_empty() {
        let i = loads[rng.index(loads.len())];
        let (p, u) = load_at(moves, i);
        let other = dag
            .nodes()
            .find(|&w| w != u)
            .expect("test DAGs have at least two nodes");
        let mut m = moves.to_vec();
        m[i] = MppMove::Load(vec![(p, u), (p, other)]);
        push(
            "duplicate-processor-in-batch",
            m,
            Box::new(move |e| matches!(e, MppErrorKind::DuplicateProcessor(q) if *q == p)),
        );
        if k >= 2 {
            let mut m = moves.to_vec();
            m[i] = MppMove::Load(vec![(p, u), ((p + 1) % k, u)]);
            push(
                "duplicate-vertex-in-batch",
                m,
                Box::new(move |e| matches!(e, MppErrorKind::DuplicateVertex(x) if *x == u)),
            );
        }
        let mut m = moves.to_vec();
        m[i] = MppMove::load1(k, u);
        push(
            "bad-processor",
            m,
            Box::new(move |e| matches!(e, MppErrorKind::BadProcessor(q) if *q == k)),
        );
        let mut m = moves.to_vec();
        m[i] = MppMove::Compute(vec![]);
        push(
            "empty-selection",
            m,
            Box::new(|e| matches!(e, MppErrorKind::EmptySelection)),
        );
    }

    out
}

/// Runs the whole corruption sweep for one seed, returning a transcript
/// `(family, corruption, step, kind)` for the determinism check.
fn sweep(seed: u64) -> Vec<(String, &'static str, usize, String)> {
    let mut rng = Rng::new(seed);
    let mut transcript = Vec::new();
    for dag in [
        generators::chain(5),
        generators::independent_chains(2, 3),
        generators::binary_in_tree(4),
        generators::grid(3, 3),
        generators::layered_random(3, 4, 2, 11),
    ] {
        for k in [1usize, 2, 3] {
            let r = dag.max_in_degree() + 1;
            let inst = MppInstance::new(&dag, k, r, 1);
            let moves = baseline(&dag, k);
            validate_mpp(&inst, &moves).expect("the uncorrupted baseline is valid");
            // Several rounds so the random site choices get exercised.
            for _ in 0..8 {
                for mutant in corruptions(&dag, &inst, &moves, &mut rng) {
                    let err = validate_mpp(&inst, &mutant.moves).err().unwrap_or_else(|| {
                        panic!(
                            "{} k={k}: corruption `{}` was not rejected",
                            dag.name(),
                            mutant.name
                        )
                    });
                    assert!(
                        (mutant.check)(&err.kind),
                        "{} k={k}: corruption `{}` rejected with the wrong variant: {:?}",
                        dag.name(),
                        mutant.name,
                        err.kind
                    );
                    transcript.push((
                        dag.name().to_string(),
                        mutant.name,
                        err.step,
                        format!("{:?}", err.kind),
                    ));
                }
            }
        }
    }
    transcript
}

#[test]
fn every_corruption_is_rejected_with_the_right_variant() {
    let transcript = sweep(0xC0_44_09);
    // Every corruption kind fired at least once across the families.
    for name in [
        "drop-load",
        "reorder-compute",
        "evict-needed-red",
        "overfill-memory",
        "drop-store-later-loaded",
        "drop-sink-store",
        "duplicate-load",
        "duplicate-store",
        "strip-sink-pebble",
        "remove-absent",
        "store-without-red",
        "duplicate-processor-in-batch",
        "duplicate-vertex-in-batch",
        "bad-processor",
        "empty-selection",
    ] {
        assert!(
            transcript.iter().any(|(_, c, _, _)| *c == name),
            "corruption `{name}` never applied"
        );
    }
}

#[test]
fn corruption_sweep_is_seed_deterministic() {
    assert_eq!(sweep(7), sweep(7));
    // And a different seed picks at least some different sites.
    assert_ne!(sweep(7), sweep(8));
}
