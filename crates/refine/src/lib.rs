//! # rbp-refine — anytime strategy refinement and a racing portfolio
//!
//! The schedulers in `rbp-schedulers` construct good MPP strategies;
//! the exact solver in `rbp-core` finds *optimal* ones but only on tiny
//! instances. This crate closes the gap between the two with local
//! search:
//!
//! - [`neighborhood`] — validity-preserving local moves over strategies
//!   (swap adjacent steps, delete dead I/O, re-assign a batch entry,
//!   trade a load for a recomputation, change an eviction victim,
//!   re-batch). Every candidate is replayed through the rule-enforcing
//!   `rbp_core::validate_mpp` before acceptance, so an illegal neighbor
//!   is a rejected proposal, never a wrong cost.
//! - [`recreate`] — the large neighborhood: truncate a strategy at a
//!   cut point and greedily reschedule the rest from the mid-game
//!   configuration (also usable as a seeded scheduler from scratch).
//! - [`drivers`] — anytime metaheuristics over those moves:
//!   first-improvement hill climbing, simulated annealing with
//!   reheating, ruin & recreate, and the default interleaving of them
//!   ([`Driver::Auto`]), under wall-clock or deterministic
//!   proposal-count budgets.
//! - [`portfolio`] — a work-stealing race: all registered schedulers,
//!   refinement workers, and (when the instance fits) the exact solver
//!   run on threads sharing one incumbent; the winner is returned with
//!   provenance and, when the exact solver finished, a proof of
//!   optimality.
//! - [`persist`] — JSONL round-tripping of strategies, so refined
//!   results can be saved and resumed (`rbp improve --in/--out`).
//!
//! Everything is deterministic per seed (`rbp_util::Rng`); all tools
//! honor the workspace-wide `RBP_SEED` environment variable through
//! [`rbp_util::env_seed`].

#![deny(missing_docs)]

pub mod drivers;
pub mod neighborhood;
pub mod persist;
pub mod portfolio;
pub mod recreate;

pub use drivers::{refine, Budget, Driver, RefineConfig, RefineOutcome};
pub use neighborhood::{Candidate, MoveKind, Neighborhood};
pub use persist::{strategy_from_jsonl, strategy_to_jsonl, SavedStrategy};
pub use portfolio::{race, PortfolioConfig, PortfolioEntry, PortfolioOutcome};
pub use recreate::{complete_greedy, greedy_from_scratch, ruin_recreate};
