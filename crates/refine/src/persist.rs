//! Strategy persistence: JSONL serialization of MPP strategies.
//!
//! Lets `rbp improve --out` save a refined strategy and a later
//! `rbp improve --in` resume from it. The format (documented in
//! `docs/SCHEMAS.md`) is one JSON object per line:
//!
//! 1. a header `{"type":"mpp_strategy","version":1,"dag":…,"n":…,
//!    "k":…,"r":…,"g":…}` recording the instance the strategy was
//!    built for, and
//! 2. one line per move — `{"op":"store"|"load"|"compute",
//!    "sel":[[p,v],…]}` for the batched rules,
//!    `{"op":"remove","proc":p,"node":v}` for red deletions,
//!    `{"op":"remove","node":v}` for blue deletions.
//!
//! Loading checks the header against nothing but its own shape; whether
//! the strategy is valid *for a given instance* is decided where it
//! matters, by replaying it through `rbp_core::validate_mpp` (the CLI
//! does exactly that before refining).

use rbp_core::{MppMove, MppStrategy, Pebble};
use rbp_dag::NodeId;
use rbp_util::json::Json;

/// The `version` emitted in (and required of) strategy headers.
pub const FORMAT_VERSION: u64 = 1;

/// A strategy together with the instance parameters it was saved under.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SavedStrategy {
    /// DAG name recorded at save time (informational).
    pub dag_name: String,
    /// Node count of the DAG the strategy was built for.
    pub n: usize,
    /// Number of processors.
    pub k: usize,
    /// Fast-memory capacity per processor.
    pub r: usize,
    /// I/O cost `g`.
    pub g: u64,
    /// The move list.
    pub strategy: MppStrategy,
}

fn sel_json(batch: &[(usize, NodeId)]) -> Json {
    Json::arr(
        batch
            .iter()
            .map(|&(p, v)| Json::arr([Json::from(p), Json::from(v.index())])),
    )
}

fn move_json(mv: &MppMove) -> Json {
    match mv {
        MppMove::Store(b) => Json::obj([("op", Json::from("store")), ("sel", sel_json(b))]),
        MppMove::Load(b) => Json::obj([("op", Json::from("load")), ("sel", sel_json(b))]),
        MppMove::Compute(b) => Json::obj([("op", Json::from("compute")), ("sel", sel_json(b))]),
        MppMove::Remove(Pebble::Red(p, v)) => Json::obj([
            ("op", Json::from("remove")),
            ("proc", Json::from(*p)),
            ("node", Json::from(v.index())),
        ]),
        MppMove::Remove(Pebble::Blue(v)) => Json::obj([
            ("op", Json::from("remove")),
            ("node", Json::from(v.index())),
        ]),
    }
}

/// Serializes a strategy (with its instance parameters) to the JSONL
/// format described in the module docs.
#[must_use]
pub fn strategy_to_jsonl(saved: &SavedStrategy) -> String {
    let mut out = String::new();
    let header = Json::obj([
        ("type", Json::from("mpp_strategy")),
        ("version", Json::from(FORMAT_VERSION)),
        ("dag", Json::from(saved.dag_name.as_str())),
        ("n", Json::from(saved.n)),
        ("k", Json::from(saved.k)),
        ("r", Json::from(saved.r)),
        ("g", Json::from(saved.g)),
    ]);
    out.push_str(&header.render());
    out.push('\n');
    for mv in &saved.strategy.moves {
        out.push_str(&move_json(mv).render());
        out.push('\n');
    }
    out
}

fn parse_sel(obj: &Json) -> Result<Vec<(usize, NodeId)>, String> {
    let sel = obj
        .get("sel")
        .and_then(Json::as_arr)
        .ok_or("missing \"sel\" array")?;
    let mut batch = Vec::with_capacity(sel.len());
    for pair in sel {
        let xs = pair.as_arr().ok_or("selection entry is not an array")?;
        let [p, v] = xs else {
            return Err(format!("selection entry has {} elements, want 2", xs.len()));
        };
        let p = p.as_u64().ok_or("processor is not an integer")?;
        let v = v.as_u64().ok_or("node is not an integer")?;
        batch.push((
            usize::try_from(p).map_err(|_| "processor out of range")?,
            NodeId(u32::try_from(v).map_err(|_| "node out of range")?),
        ));
    }
    Ok(batch)
}

fn parse_move(obj: &Json) -> Result<MppMove, String> {
    let op = obj
        .get("op")
        .and_then(Json::as_str)
        .ok_or("missing \"op\"")?;
    match op {
        "store" => Ok(MppMove::Store(parse_sel(obj)?)),
        "load" => Ok(MppMove::Load(parse_sel(obj)?)),
        "compute" => Ok(MppMove::Compute(parse_sel(obj)?)),
        "remove" => {
            let v = obj
                .get("node")
                .and_then(Json::as_u64)
                .ok_or("remove missing \"node\"")?;
            let v = NodeId(u32::try_from(v).map_err(|_| "node out of range")?);
            match obj.get("proc") {
                Some(p) => {
                    let p = p.as_u64().ok_or("processor is not an integer")?;
                    let p = usize::try_from(p).map_err(|_| "processor out of range")?;
                    Ok(MppMove::Remove(Pebble::Red(p, v)))
                }
                None => Ok(MppMove::Remove(Pebble::Blue(v))),
            }
        }
        other => Err(format!("unknown op {other:?}")),
    }
}

/// Parses the JSONL produced by [`strategy_to_jsonl`]. Returns a
/// human-readable error (with the offending line number) on any shape
/// mismatch; rule-level validity is checked later against an instance.
pub fn strategy_from_jsonl(text: &str) -> Result<SavedStrategy, String> {
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    let (_, first) = lines.next().ok_or("empty strategy file")?;
    let header = Json::parse(first).map_err(|e| format!("line 1: {e:?}"))?;
    if header.get("type").and_then(Json::as_str) != Some("mpp_strategy") {
        return Err("line 1: not an mpp_strategy header".to_string());
    }
    if header.get("version").and_then(Json::as_u64) != Some(FORMAT_VERSION) {
        return Err(format!(
            "line 1: unsupported version (want {FORMAT_VERSION})"
        ));
    }
    let field = |name: &str| -> Result<u64, String> {
        header
            .get(name)
            .and_then(Json::as_u64)
            .ok_or(format!("line 1: missing \"{name}\""))
    };
    let n = usize::try_from(field("n")?).map_err(|_| "n out of range")?;
    let k = usize::try_from(field("k")?).map_err(|_| "k out of range")?;
    let r = usize::try_from(field("r")?).map_err(|_| "r out of range")?;
    let g = field("g")?;
    let dag_name = header
        .get("dag")
        .and_then(Json::as_str)
        .unwrap_or("")
        .to_string();

    let mut moves = Vec::new();
    for (i, line) in lines {
        let obj = Json::parse(line).map_err(|e| format!("line {}: {e:?}", i + 1))?;
        moves.push(parse_move(&obj).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(SavedStrategy {
        dag_name,
        n,
        k,
        r,
        g,
        strategy: MppStrategy::from_moves(moves),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbp_core::{validate_mpp, MppInstance, MppSimulator};
    use rbp_dag::generators;

    #[test]
    fn round_trip_preserves_strategy_exactly() {
        let dag = generators::grid(2, 3);
        let inst = MppInstance::new(&dag, 2, 3, 2);
        let mut sim = MppSimulator::new(inst);
        for (i, &v) in dag.topo().order().iter().enumerate() {
            let p = i % inst.k;
            for &u in dag.preds(v) {
                if !sim.config().reds[p].contains(u) {
                    sim.load(vec![(p, u)]).unwrap();
                }
            }
            sim.compute(vec![(p, v)]).unwrap();
            sim.store(vec![(p, v)]).unwrap();
            for &u in dag.preds(v) {
                sim.remove_red(p, u).unwrap();
            }
            sim.remove_red(p, v).unwrap();
        }
        let run = sim.finish().unwrap();
        let saved = SavedStrategy {
            dag_name: dag.name().to_string(),
            n: dag.n(),
            k: inst.k,
            r: inst.r,
            g: inst.model.g,
            strategy: run.strategy.clone(),
        };
        let text = strategy_to_jsonl(&saved);
        let loaded = strategy_from_jsonl(&text).unwrap();
        assert_eq!(loaded, saved);
        // And the reloaded strategy still validates at the same cost.
        let cost = validate_mpp(&inst, &loaded.strategy.moves).unwrap();
        assert_eq!(cost, run.cost);
    }

    #[test]
    fn all_move_shapes_round_trip() {
        let moves = vec![
            MppMove::Compute(vec![(0, NodeId(0)), (1, NodeId(3))]),
            MppMove::Store(vec![(1, NodeId(3))]),
            MppMove::Load(vec![(0, NodeId(3))]),
            MppMove::Remove(Pebble::Red(1, NodeId(3))),
            MppMove::Remove(Pebble::Blue(NodeId(3))),
        ];
        let saved = SavedStrategy {
            dag_name: "synthetic".to_string(),
            n: 4,
            k: 2,
            r: 3,
            g: 2,
            strategy: MppStrategy::from_moves(moves),
        };
        let loaded = strategy_from_jsonl(&strategy_to_jsonl(&saved)).unwrap();
        assert_eq!(loaded, saved);
    }

    #[test]
    fn malformed_inputs_are_rejected_with_line_numbers() {
        assert!(strategy_from_jsonl("").is_err());
        assert!(strategy_from_jsonl("{\"type\":\"other\"}").is_err());
        let bad_version = "{\"type\":\"mpp_strategy\",\"version\":99,\"dag\":\"x\",\"n\":1,\"k\":1,\"r\":1,\"g\":1}";
        assert!(strategy_from_jsonl(bad_version)
            .unwrap_err()
            .contains("version"));
        let bad_move = "{\"type\":\"mpp_strategy\",\"version\":1,\"dag\":\"x\",\"n\":1,\"k\":1,\"r\":1,\"g\":1}\n{\"op\":\"teleport\"}";
        let err = strategy_from_jsonl(bad_move).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        assert!(err.contains("teleport"), "{err}");
    }
}
