//! The neighborhood model: validity-preserving local moves over MPP
//! strategies.
//!
//! A *local move* edits a valid strategy's move list a little — swapping
//! adjacent steps, deleting dead I/O, changing an eviction victim,
//! trading a load for a recomputation, re-assigning a batch entry to
//! another processor, or re-batching the whole list. Every candidate
//! produced here is replayed through the rule-enforcing
//! [`rbp_core::mpp::strategy::validate`] before it can be accepted, so
//! an illegal neighbor surfaces as a rejected proposal (counted under
//! `refine.invalid.*`), never as a silently wrong cost.
//!
//! Moves are *targeted* rather than blind: generators replay the prefix
//! configuration where a precondition matters (e.g. recomputation needs
//! the inputs red, a victim change needs the new victim on the board),
//! which keeps the share of validator-rejected proposals low.

use rbp_core::{
    batchify, validate_mpp, Configuration, MppInstance, MppMove, MppStrategy, Pebble, ProcId,
};
use rbp_dag::NodeId;
use rbp_util::Rng;

/// The kinds of local moves, used for acceptance accounting
/// (`refine.proposed.<kind>` / `refine.accepted.<kind>` counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MoveKind {
    /// Swap two adjacent, independent steps (cost-neutral; unlocks
    /// merges and deletions).
    SwapAdjacent,
    /// Delete one whole step (saves its full rule cost).
    DropStep,
    /// Delete one entry from a multi-entry batch (cost-neutral; the
    /// smaller batch often makes a later step deletable).
    DropEntry,
    /// Re-assign one batch entry to a different processor.
    Reassign,
    /// Replace a single-entry load with a recomputation (saves `g - 1`
    /// when the inputs are already resident).
    Recompute,
    /// Point an eviction at a different resident red pebble.
    ChangeVictim,
    /// Re-run [`rbp_core::batchify`] over the whole strategy.
    Batchify,
    /// Ruin-and-recreate: truncate at a cut point and greedily
    /// reschedule the rest (the large neighborhood; see
    /// [`crate::recreate`]).
    RuinRecreate,
}

impl MoveKind {
    /// All kinds, in a fixed order (for counter registration).
    pub const ALL: [MoveKind; 8] = [
        MoveKind::SwapAdjacent,
        MoveKind::DropStep,
        MoveKind::DropEntry,
        MoveKind::Reassign,
        MoveKind::Recompute,
        MoveKind::ChangeVictim,
        MoveKind::Batchify,
        MoveKind::RuinRecreate,
    ];

    /// Stable lowercase name used in trace counters.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            MoveKind::SwapAdjacent => "swap_adjacent",
            MoveKind::DropStep => "drop_step",
            MoveKind::DropEntry => "drop_entry",
            MoveKind::Reassign => "reassign",
            MoveKind::Recompute => "recompute",
            MoveKind::ChangeVictim => "change_victim",
            MoveKind::Batchify => "batchify",
            MoveKind::RuinRecreate => "ruin_recreate",
        }
    }
}

/// A proposed neighbor: the edited move list plus the kind of edit that
/// produced it. Candidates are *not* yet known to be valid — run them
/// through [`Neighborhood::evaluate`].
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Which local move produced this neighbor.
    pub kind: MoveKind,
    /// The edited move list.
    pub moves: Vec<MppMove>,
}

/// Move generator bound to one instance.
#[derive(Debug, Clone, Copy)]
pub struct Neighborhood<'a> {
    instance: MppInstance<'a>,
}

impl<'a> Neighborhood<'a> {
    /// A neighborhood over strategies for `instance`.
    #[must_use]
    pub fn new(instance: MppInstance<'a>) -> Self {
        Neighborhood { instance }
    }

    /// The instance this neighborhood validates against.
    #[must_use]
    pub fn instance(&self) -> &MppInstance<'a> {
        &self.instance
    }

    /// Replays `moves` through the rule validator and returns the total
    /// cost, or `None` if the candidate breaks a rule (an invalid
    /// neighbor — rejected, never accepted with a guessed cost).
    #[must_use]
    pub fn evaluate(&self, moves: &[MppMove]) -> Option<u64> {
        validate_mpp(&self.instance, moves)
            .ok()
            .map(|c| c.total(self.instance.model))
    }

    /// Proposes one random small neighbor of `moves` (everything except
    /// the [`MoveKind::RuinRecreate`] large neighborhood, which needs
    /// its own rescheduling pass). Returns `None` when the strategy is
    /// too short to edit or the dice landed on an inapplicable site.
    #[must_use]
    pub fn propose(&self, moves: &[MppMove], rng: &mut Rng) -> Option<Candidate> {
        if moves.is_empty() {
            return None;
        }
        match rng.index(7) {
            0 => self.swap_adjacent(moves, rng),
            1 => self.drop_step(moves, rng),
            2 => self.drop_entry(moves, rng),
            3 => self.reassign(moves, rng),
            4 => self.recompute(moves, rng),
            5 => self.change_victim(moves, rng),
            _ => self.batchify_pass(moves),
        }
    }

    /// Swaps `moves[i]` and `moves[i+1]` for a random `i`. Skipped when
    /// the two steps are identical (a no-op neighbor).
    fn swap_adjacent(&self, moves: &[MppMove], rng: &mut Rng) -> Option<Candidate> {
        if moves.len() < 2 {
            return None;
        }
        let i = rng.index(moves.len() - 1);
        if moves[i] == moves[i + 1] {
            return None;
        }
        let mut out = moves.to_vec();
        out.swap(i, i + 1);
        Some(Candidate {
            kind: MoveKind::SwapAdjacent,
            moves: out,
        })
    }

    /// Deletes one whole step, preferring costed steps (I/O or compute)
    /// whose removal is an immediate saving; removals (free) are also
    /// deletable, which de-clutters the list for other moves.
    fn drop_step(&self, moves: &[MppMove], rng: &mut Rng) -> Option<Candidate> {
        let i = rng.index(moves.len());
        let mut out = moves.to_vec();
        out.remove(i);
        Some(Candidate {
            kind: MoveKind::DropStep,
            moves: out,
        })
    }

    /// Deletes one entry of a multi-entry batch (the step survives with
    /// the same cost; the dropped pebble movement may unlock a later
    /// [`MoveKind::DropStep`]).
    fn drop_entry(&self, moves: &[MppMove], rng: &mut Rng) -> Option<Candidate> {
        let i = rng.index(moves.len());
        let batch = match &moves[i] {
            MppMove::Store(b) | MppMove::Load(b) | MppMove::Compute(b) if b.len() > 1 => b,
            _ => return None,
        };
        let e = rng.index(batch.len());
        let mut nb = batch.clone();
        nb.remove(e);
        let mut out = moves.to_vec();
        out[i] = rebuild(&moves[i], nb);
        Some(Candidate {
            kind: MoveKind::DropEntry,
            moves: out,
        })
    }

    /// Re-assigns one batch entry `(p, v)` to a different processor not
    /// already in the batch. Downstream steps still reference the old
    /// shade, so this mostly survives validation when the value's later
    /// uses are shade-independent (stores already made, sink coverage).
    fn reassign(&self, moves: &[MppMove], rng: &mut Rng) -> Option<Candidate> {
        let k = self.instance.k;
        if k < 2 {
            return None;
        }
        let i = rng.index(moves.len());
        let batch = match &moves[i] {
            MppMove::Store(b) | MppMove::Load(b) | MppMove::Compute(b) => b,
            MppMove::Remove(_) => return None,
        };
        let e = rng.index(batch.len());
        let q = rng.index(k);
        if q == batch[e].0 || batch.iter().any(|&(p, _)| p == q) {
            return None;
        }
        let mut nb = batch.clone();
        nb[e].0 = q;
        let mut out = moves.to_vec();
        out[i] = rebuild(&moves[i], nb);
        Some(Candidate {
            kind: MoveKind::Reassign,
            moves: out,
        })
    }

    /// Replaces a single-entry load `(p, v)` with a compute `(p, v)`
    /// when all of `v`'s inputs are red on `p` at that point (checked by
    /// replaying the prefix). Saves `g - compute` per hit.
    fn recompute(&self, moves: &[MppMove], rng: &mut Rng) -> Option<Candidate> {
        if self.instance.model.g <= self.instance.model.compute {
            return None;
        }
        let i = rng.index(moves.len());
        let (p, v) = match &moves[i] {
            MppMove::Load(b) if b.len() == 1 => b[0],
            _ => return None,
        };
        let config = self.config_before(moves, i)?;
        let all_red = self
            .instance
            .dag
            .preds(v)
            .iter()
            .all(|&u| config.reds[p].contains(u));
        if !all_red {
            return None;
        }
        let mut out = moves.to_vec();
        out[i] = MppMove::compute1(p, v);
        Some(Candidate {
            kind: MoveKind::Recompute,
            moves: out,
        })
    }

    /// Picks an eviction step `Remove(Red(p, v))` and swaps its victim
    /// for another red pebble resident on `p` at that point.
    /// Cost-neutral, but redirecting evictions is how load/recompute
    /// savings become reachable.
    fn change_victim(&self, moves: &[MppMove], rng: &mut Rng) -> Option<Candidate> {
        let i = rng.index(moves.len());
        let (p, v) = match &moves[i] {
            MppMove::Remove(Pebble::Red(p, v)) => (*p, *v),
            _ => return None,
        };
        let config = self.config_before(moves, i)?;
        let resident: Vec<NodeId> = config.reds[p].iter().filter(|&u| u != v).collect();
        if resident.is_empty() {
            return None;
        }
        let u = resident[rng.index(resident.len())];
        let mut out = moves.to_vec();
        out[i] = MppMove::Remove(Pebble::Red(p, u));
        Some(Candidate {
            kind: MoveKind::ChangeVictim,
            moves: out,
        })
    }

    /// Re-batches the whole strategy with [`rbp_core::batchify`]; only
    /// proposed when the input is valid (it always is for incumbents).
    fn batchify_pass(&self, moves: &[MppMove]) -> Option<Candidate> {
        let strategy = MppStrategy::from_moves(moves.to_vec());
        let merged = batchify(&self.instance, &strategy);
        if merged.moves == moves {
            return None;
        }
        Some(Candidate {
            kind: MoveKind::Batchify,
            moves: merged.moves,
        })
    }

    /// Replays `moves[..i]` and returns the configuration before step
    /// `i`, or `None` if the prefix is itself invalid (cannot happen for
    /// incumbents, which are always validated).
    fn config_before(&self, moves: &[MppMove], i: usize) -> Option<Configuration> {
        let mut config = Configuration::initial(self.instance.dag, self.instance.k);
        for mv in &moves[..i] {
            rbp_core::mpp::strategy::apply_move(&self.instance, &mut config, mv).ok()?;
        }
        Some(config)
    }
}

/// Rebuilds a batch move of the same type as `like` around `batch`.
fn rebuild(like: &MppMove, batch: Vec<(ProcId, NodeId)>) -> MppMove {
    match like {
        MppMove::Store(_) => MppMove::Store(batch),
        MppMove::Load(_) => MppMove::Load(batch),
        MppMove::Compute(_) => MppMove::Compute(batch),
        MppMove::Remove(p) => MppMove::Remove(*p),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbp_core::MppSimulator;
    use rbp_dag::generators;

    /// Baseline strategy builder (load/compute/store per node) used as a
    /// deliberately slack starting point.
    fn baseline(inst: &MppInstance) -> Vec<MppMove> {
        let dag = inst.dag;
        let mut sim = MppSimulator::new(*inst);
        for (i, &v) in dag.topo().order().iter().enumerate() {
            let p = i % inst.k;
            for &u in dag.preds(v) {
                sim.load(vec![(p, u)]).unwrap();
            }
            sim.compute(vec![(p, v)]).unwrap();
            sim.store(vec![(p, v)]).unwrap();
            for &u in dag.preds(v) {
                sim.remove_red(p, u).unwrap();
            }
            sim.remove_red(p, v).unwrap();
        }
        sim.finish().unwrap().strategy.moves
    }

    #[test]
    fn accepted_candidates_always_revalidate() {
        let dag = generators::grid(3, 3);
        let inst = MppInstance::new(&dag, 2, 3, 2);
        let nb = Neighborhood::new(inst);
        let mut rng = Rng::new(42);
        let mut current = baseline(&inst);
        let mut cur_total = nb.evaluate(&current).unwrap();
        let mut accepted = 0;
        for _ in 0..3000 {
            let Some(c) = nb.propose(&current, &mut rng) else {
                continue;
            };
            if let Some(total) = nb.evaluate(&c.moves) {
                // evaluate == full rule validation; re-check agreement
                // with an independent validate call.
                let again = validate_mpp(&inst, &c.moves).unwrap();
                assert_eq!(again.total(inst.model), total);
                if total <= cur_total {
                    current = c.moves;
                    cur_total = total;
                    accepted += 1;
                }
            }
        }
        assert!(accepted > 0, "neighborhood never produced a valid accept");
    }

    #[test]
    fn drop_step_finds_dead_io() {
        // Baseline stores every value; values never loaded again are
        // dead stores the neighborhood must be able to delete.
        let dag = generators::chain(4);
        let inst = MppInstance::new(&dag, 1, 2, 3);
        let nb = Neighborhood::new(inst);
        let start = baseline(&inst);
        let start_total = nb.evaluate(&start).unwrap();
        let mut rng = Rng::new(7);
        let mut best = start_total;
        let mut current = start;
        for _ in 0..4000 {
            if let Some(c) = nb.propose(&current, &mut rng) {
                if let Some(t) = nb.evaluate(&c.moves) {
                    if t <= best {
                        best = t;
                        current = c.moves;
                    }
                }
            }
        }
        // Chain on one processor: only the sink's pebble is needed at
        // the end, so some of the baseline's stores/reloads are dead
        // weight the small moves must be able to shave. (Deleting a
        // store *and* its matching reload is a two-step edit whose
        // halves are individually invalid — that coupled deletion is
        // exactly what the ruin-and-recreate large neighborhood is for,
        // exercised below.)
        assert!(best < start_total, "no dead I/O deleted");
        let rebuilt = crate::recreate::ruin_recreate(&inst, &current, 0, &mut rng).unwrap();
        let total = nb.evaluate(&rebuilt.strategy.moves).unwrap();
        assert_eq!(total, 4, "greedy rebuild leaves only the 4 computes");
    }

    #[test]
    fn recompute_trades_load_for_compute() {
        // p0 computes v0, stores, evicts, reloads it for v1: the reload
        // has its input... no — recompute applies where preds are red.
        // Construct directly: compute v0, store v0, remove v0, load v0,
        // compute v1. The load (g=5) can become a recompute (1) since
        // v0 is a source (no preds).
        let dag = rbp_dag::dag_from_edges(2, &[(0, 1)]);
        let inst = MppInstance::new(&dag, 1, 2, 5);
        let v = |i: u32| NodeId(i);
        let moves = vec![
            MppMove::compute1(0, v(0)),
            MppMove::store1(0, v(0)),
            MppMove::Remove(Pebble::Red(0, v(0))),
            MppMove::load1(0, v(0)),
            MppMove::compute1(0, v(1)),
        ];
        let nb = Neighborhood::new(inst);
        let before = nb.evaluate(&moves).unwrap();
        let mut rng = Rng::new(3);
        let mut found = false;
        for _ in 0..200 {
            if let Some(c) = nb.propose(&moves, &mut rng) {
                if c.kind == MoveKind::Recompute {
                    let t = nb.evaluate(&c.moves).unwrap();
                    assert_eq!(t, before - 4, "load g=5 became compute 1");
                    found = true;
                    break;
                }
            }
        }
        assert!(found, "recompute move never proposed");
    }

    #[test]
    fn empty_strategy_has_no_neighbors() {
        let dag = rbp_dag::dag_from_edges(0, &[]);
        let inst = MppInstance::new(&dag, 1, 1, 1);
        let nb = Neighborhood::new(inst);
        let mut rng = Rng::new(1);
        assert!(nb.propose(&[], &mut rng).is_none());
    }
}
