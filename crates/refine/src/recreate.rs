//! Greedy rescheduling from an arbitrary mid-game configuration.
//!
//! The large neighborhood ("ruin & recreate") rips the tail off a
//! strategy and rebuilds it: replay the kept prefix on a fresh
//! [`MppSimulator`], then [`complete_greedy`] finishes the game from
//! whatever configuration the prefix left behind. The completion is a
//! randomized greedy pass — processor choice and eviction victims break
//! ties through the caller's RNG — so repeated recreations from the same
//! cut explore different tails.
//!
//! Correctness invariant: a value that is still *live* (an input of a
//! yet-uncomputed needed node, or a sink's only pebble) is stored to
//! slow memory before its last red copy is evicted, so the pass can
//! always finish. Every emitted move goes through the rule-enforcing
//! simulator; an illegal move is a bug that surfaces as an error, not a
//! wrong cost.

use rbp_core::{MppError, MppInstance, MppMove, MppRun, MppSimulator, ProcId};
use rbp_dag::NodeId;
use rbp_util::Rng;

/// Completes the game on `sim` (in any legal mid-game state) to
/// terminality with a randomized greedy pass, then finishes the run.
///
/// The pass walks the nodes that still must be (re)computed — ancestors
/// of uncovered sinks whose values are materialized nowhere — in
/// topological order. Each node is computed on the processor already
/// holding most of its inputs (ties broken by load then RNG); missing
/// inputs are loaded from slow memory, cross-shade inputs are stored by
/// their owner first; capacity is made by evicting the least useful
/// resident pebble, storing it first when it is the last copy of a live
/// value.
pub fn complete_greedy(sim: &mut MppSimulator, rng: &mut Rng) -> Result<MppRun, MppError> {
    let inst = *sim.instance();
    let dag = inst.dag;
    let n = dag.n();
    let k = inst.k;
    let topo = dag.topo();

    // Values materialized anywhere (blue or any shade of red).
    let mut available = sim.config().blue.clone();
    for reds in &sim.config().reds {
        available.union_with(reds);
    }

    // `need`: nodes that must be (re)computed, marked by a reverse
    // topological scan from uncovered sinks through unavailable values.
    let mut need = dag.empty_set();
    for &v in topo.order().iter().rev() {
        let uncovered_sink = dag.succs(v).is_empty() && !sim.config().has_pebble(v);
        let needed_input = dag.succs(v).iter().any(|&w| need.contains(w));
        if (uncovered_sink || needed_input) && !available.contains(v) {
            need.insert(v);
        }
    }

    // remaining_uses[v] = how many needed, not-yet-computed nodes read v.
    let mut remaining_uses = vec![0usize; n];
    for v in dag.nodes() {
        if need.contains(v) {
            for &u in dag.preds(v) {
                remaining_uses[u.index()] += 1;
            }
        }
    }

    // Per-processor work tally for load-balanced tie-breaks.
    let mut assigned = vec![0usize; k];

    let mut pending: Vec<NodeId> = topo
        .order()
        .iter()
        .copied()
        .filter(|&v| need.contains(v))
        .collect();

    // Process the pending nodes in *waves*: each wave picks up to `k`
    // ready nodes (all inputs materialized somewhere) on distinct
    // processors, assembles their inputs with cross-processor *batched*
    // I/O rounds, and emits a single batched compute, so the rebuilt
    // tail exploits the one-cost-per-parallel-step semantics instead of
    // leaving all the batching to a later optimization pass.
    let mut deferred = vec![false; n];
    while !pending.is_empty() {
        let mut wave: Vec<(ProcId, NodeId)> = Vec::new();
        let mut used = vec![false; k];
        let mut rest: Vec<NodeId> = Vec::new();
        for &v in &pending {
            if wave.len() >= k || !dag.preds(v).iter().all(|&u| available.contains(u)) {
                rest.push(v);
                continue;
            }
            // Score every processor: fewest missing inputs first (each
            // missing one is a load, maybe a store), then *sibling
            // affinity* (prefer the shade holding — or about to compute,
            // earlier in this same wave — co-inputs of v's successors,
            // so siblings land together and their consumer computes
            // without communication), then load balance; remaining ties
            // break randomly.
            let affinity = |p: ProcId| {
                dag.succs(v)
                    .iter()
                    .flat_map(|&w| dag.preds(w))
                    .filter(|&&u| {
                        u != v
                            && (sim.config().reds[p].contains(u)
                                || wave.iter().any(|&(q, x)| q == p && x == u))
                    })
                    .count()
            };
            let score = |p: ProcId| {
                let missing = dag
                    .preds(v)
                    .iter()
                    .filter(|&&u| !sim.config().reds[p].contains(u))
                    .count();
                (missing, usize::MAX - affinity(p), assigned[p])
            };
            let ideal = (0..k).map(score).min().expect("k >= 1");
            let mut best: Vec<ProcId> = Vec::new();
            let mut best_score = (usize::MAX, usize::MAX, usize::MAX);
            for p in (0..k).filter(|&p| !used[p]) {
                let s = score(p);
                match s.cmp(&best_score) {
                    std::cmp::Ordering::Less => {
                        best_score = s;
                        best.clear();
                        best.push(p);
                    }
                    std::cmp::Ordering::Equal => best.push(p),
                    std::cmp::Ordering::Greater => {}
                }
            }
            // If every free processor is strictly worse than the node's
            // ideal placement, sit out one wave and retry when the ideal
            // shade is free again (a single deferral, so waves cannot
            // livelock).
            if best.is_empty() || (best_score > ideal && !deferred[v.index()]) {
                deferred[v.index()] = true;
                rest.push(v);
                continue;
            }
            let q = best[rng.index(best.len())];
            used[q] = true;
            assigned[q] += 1;
            wave.push((q, v));
        }
        assert!(
            !wave.is_empty(),
            "topological order guarantees the first pending node is ready"
        );

        // Publish phase: every input only materialized as another
        // shade's red pebble gets a blue copy, in batched store rounds
        // (one store per owner per round, distinct values per batch).
        let mut publish: Vec<(ProcId, NodeId)> = Vec::new();
        for &(q, v) in &wave {
            for &u in dag.preds(v) {
                if sim.config().reds[q].contains(u)
                    || sim.config().blue.contains(u)
                    || publish.iter().any(|&(_, x)| x == u)
                {
                    continue;
                }
                let owner = (0..k)
                    .find(|&p| sim.config().reds[p].contains(u))
                    .expect("live input lost: recreate invariant violated");
                publish.push((owner, u));
            }
        }
        while !publish.is_empty() {
            let mut batch: Vec<(ProcId, NodeId)> = Vec::new();
            publish.retain(|&(p, u)| {
                if batch.iter().any(|&(bp, _)| bp == p) {
                    true
                } else {
                    batch.push((p, u));
                    false
                }
            });
            sim.store(batch)?;
        }

        // Load phase: per-member queues drained in batched rounds (one
        // load per processor per round, distinct values per batch), with
        // room made on each shade just before its load.
        let mut queues: Vec<(ProcId, NodeId, Vec<NodeId>)> = wave
            .iter()
            .map(|&(q, v)| {
                let missing = dag
                    .preds(v)
                    .iter()
                    .copied()
                    .filter(|&u| !sim.config().reds[q].contains(u))
                    .collect();
                (q, v, missing)
            })
            .collect();
        loop {
            let mut batch: Vec<(ProcId, NodeId)> = Vec::new();
            for (q, v, queue) in &mut queues {
                let Some(pos) = queue
                    .iter()
                    .position(|&u| !batch.iter().any(|&(_, x)| x == u))
                else {
                    continue;
                };
                let u = queue.remove(pos);
                make_room(sim, *q, *v, &remaining_uses, rng)?;
                batch.push((*q, u));
            }
            if batch.is_empty() {
                break;
            }
            sim.load(batch)?;
        }

        for &(q, v) in &wave {
            make_room(sim, q, v, &remaining_uses, rng)?;
        }
        sim.compute(wave.clone())?;
        for &(_, v) in &wave {
            available.insert(v);
            for &u in dag.preds(v) {
                remaining_uses[u.index()] -= 1;
            }
        }
        pending = rest;
    }
    sim.clone().finish()
}

/// Frees one fast-memory slot on `q` if it is at capacity, never
/// touching the inputs (or output slot) of `target`, and storing the
/// victim first when it is the last copy of a live value.
fn make_room(
    sim: &mut MppSimulator,
    q: ProcId,
    target: NodeId,
    remaining_uses: &[usize],
    rng: &mut Rng,
) -> Result<(), MppError> {
    let inst = *sim.instance();
    let dag = inst.dag;
    while sim.config().reds[q].len() >= inst.r {
        let pinned = |w: NodeId| w == target || dag.preds(target).contains(&w);
        let candidates: Vec<NodeId> = sim.config().reds[q]
            .iter()
            .filter(|&w| !pinned(w))
            .collect();
        assert!(
            !candidates.is_empty(),
            "no evictable pebble: r < Δin + 1 should have been rejected as infeasible"
        );
        // Prefer dead values (no remaining uses, not an unpebbled sink);
        // otherwise any candidate, stored before eviction when live.
        let dead: Vec<NodeId> = candidates
            .iter()
            .copied()
            .filter(|&w| remaining_uses[w.index()] == 0 && !dag.succs(w).is_empty())
            .collect();
        let pool = if dead.is_empty() { &candidates } else { &dead };
        let w = pool[rng.index(pool.len())];
        let last_copy = !sim.config().blue.contains(w)
            && (0..inst.k).all(|p| p == q || !sim.config().reds[p].contains(w));
        let live = remaining_uses[w.index()] > 0 || dag.succs(w).is_empty();
        if live && last_copy {
            sim.ensure_stored(q, w)?;
        }
        sim.remove_red(q, w)?;
    }
    Ok(())
}

/// Builds a strategy from scratch with the randomized greedy pass: a
/// seeded, load-balanced scheduler in its own right, used to diversify
/// portfolio starting points.
pub fn greedy_from_scratch(instance: &MppInstance, rng: &mut Rng) -> Result<MppRun, MppError> {
    let mut sim = MppSimulator::new(*instance);
    complete_greedy(&mut sim, rng)
}

/// One ruin-and-recreate pass: keep `moves[..cut]`, reschedule the rest
/// greedily. Returns the full rebuilt move list (the caller re-batches
/// and evaluates it).
pub fn ruin_recreate(
    instance: &MppInstance,
    moves: &[MppMove],
    cut: usize,
    rng: &mut Rng,
) -> Result<MppRun, MppError> {
    let mut sim = MppSimulator::new(*instance);
    for mv in &moves[..cut.min(moves.len())] {
        sim.apply(mv.clone())?;
    }
    complete_greedy(&mut sim, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbp_core::validate_mpp;
    use rbp_dag::generators;

    #[test]
    fn scratch_completion_is_valid_on_many_dags() {
        let mut rng = Rng::new(11);
        for dag in [
            generators::chain(6),
            generators::independent_chains(3, 4),
            generators::binary_in_tree(8),
            generators::grid(3, 4),
            generators::fft(3),
            generators::layered_random(4, 4, 2, 5),
        ] {
            for k in [1usize, 2, 3] {
                let r = dag.max_in_degree() + 1;
                let inst = MppInstance::new(&dag, k, r, 2);
                let run = greedy_from_scratch(&inst, &mut rng).unwrap();
                let cost = validate_mpp(&inst, &run.strategy.moves).unwrap();
                assert_eq!(cost, run.cost, "{} k={k}", dag.name());
            }
        }
    }

    #[test]
    fn recreate_from_every_cut_of_a_baseline() {
        let dag = generators::grid(2, 4);
        let inst = MppInstance::new(&dag, 2, 3, 2);
        // Slack baseline built through the simulator.
        let mut sim = MppSimulator::new(inst);
        for (i, &v) in dag.topo().order().iter().enumerate() {
            let p = i % inst.k;
            for &u in dag.preds(v) {
                sim.load(vec![(p, u)]).unwrap();
            }
            sim.compute(vec![(p, v)]).unwrap();
            sim.store(vec![(p, v)]).unwrap();
            for &u in dag.preds(v) {
                sim.remove_red(p, u).unwrap();
            }
            sim.remove_red(p, v).unwrap();
        }
        let base = sim.finish().unwrap();
        let mut rng = Rng::new(23);
        for cut in 0..=base.strategy.len() {
            let run = ruin_recreate(&inst, &base.strategy.moves, cut, &mut rng).unwrap();
            validate_mpp(&inst, &run.strategy.moves).unwrap();
        }
    }

    #[test]
    fn tight_memory_forces_stores_but_still_completes() {
        // r = Δin + 1 exactly: every compute needs evictions around it.
        let dag = generators::binary_in_tree(8);
        let inst = MppInstance::new(&dag, 2, 3, 4);
        let mut rng = Rng::new(99);
        for _ in 0..10 {
            let run = greedy_from_scratch(&inst, &mut rng).unwrap();
            validate_mpp(&inst, &run.strategy.moves).unwrap();
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let dag = generators::layered_random(4, 4, 2, 3);
        let inst = MppInstance::new(&dag, 2, 3, 2);
        let a = greedy_from_scratch(&inst, &mut Rng::new(5)).unwrap();
        let b = greedy_from_scratch(&inst, &mut Rng::new(5)).unwrap();
        assert_eq!(a.strategy, b.strategy);
    }
}
