//! A racing solver portfolio with a shared incumbent.
//!
//! [`race`] runs every registered scheduler, anytime refinement, and —
//! when the instance is small enough — the exact A\* solver
//! concurrently on `std::thread` workers. All workers publish into one
//! shared incumbent (an atomic cost bound plus a mutex-guarded best
//! strategy); refinement workers *steal* the current best as their
//! starting point between chunks, so a scheduler's head start
//! immediately seeds the local search, and an exact-solver win stops
//! everyone early.
//!
//! Every submitted strategy has already been validated (schedulers and
//! refinement only produce validated runs; the exact solver's witness is
//! re-validated here), so the portfolio's answer is always a legal
//! strategy with its true cost, together with provenance naming the
//! worker that found it.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use rbp_core::{
    batchify, solve_mpp_with, validate_mpp, GameMode, MppError, MppInstance, MppMove, MppRun,
    MppStrategy, PartitionMode, SearchConfig, SolveLimits,
};
use rbp_schedulers::all_schedulers;
use rbp_util::Rng;

use crate::drivers::{refine, Budget, Driver, RefineConfig};
use crate::recreate;

/// Configuration of one portfolio race.
#[derive(Debug, Clone, Copy)]
pub struct PortfolioConfig {
    /// Overall wall-clock budget in milliseconds. Schedulers always run
    /// to completion; refinement stops at the deadline; the exact solver
    /// is bounded by `exact_max_states` rather than time.
    pub budget_millis: u64,
    /// Base seed for all randomized workers (combine with
    /// [`rbp_util::env_seed`] for `RBP_SEED` plumbing).
    pub seed: u64,
    /// Whether to enter the exact solver when the instance fits
    /// (`n ≤ 64`, `k ≤ 4`).
    pub use_exact: bool,
    /// State budget handed to the exact solver (keeps its runtime
    /// roughly proportional to the race budget).
    pub exact_max_states: usize,
    /// Worker threads for the exact solver (`≥ 2` runs the sharded
    /// parallel engine; same proven optimum).
    pub exact_threads: usize,
    /// Shard-ownership strategy for the parallel exact solver
    /// (irrelevant when `exact_threads == 1`).
    pub exact_partition: PartitionMode,
    /// Number of concurrent refinement workers.
    pub refine_workers: usize,
    /// Game mode, carried from the workspace-wide [`GameMode`] flag
    /// parser. The race itself answers the two-level question; with
    /// [`GameMode::Hier`] it gains a `hier-exact` lane that solves the
    /// lifted three-level instance and submits the *flattened* witness
    /// (`rbp_hier::hier_to_mpp`) into the shared incumbent — a legal
    /// two-level strategy, never marked proven-optimal.
    pub mode: GameMode,
}

impl Default for PortfolioConfig {
    /// One second, two refinement workers, exact solver capped at
    /// 200 000 settled states.
    fn default() -> Self {
        PortfolioConfig {
            budget_millis: 1000,
            seed: 0,
            use_exact: true,
            exact_max_states: 200_000,
            exact_threads: 1,
            exact_partition: PartitionMode::default(),
            refine_workers: 2,
            mode: GameMode::Vanilla,
        }
    }
}

/// One worker's contribution to the race, for reporting.
#[derive(Debug, Clone)]
pub struct PortfolioEntry {
    /// Worker name (scheduler name, `"exact-a*"`, `"refine-w<i>"`).
    pub name: String,
    /// Best total cost this worker submitted (`None` when it produced
    /// nothing, e.g. the exact solver hit its state budget).
    pub total: Option<u64>,
    /// Wall-clock milliseconds the worker spent.
    pub millis: u64,
}

/// The winner of a portfolio race.
#[derive(Debug, Clone)]
pub struct PortfolioOutcome {
    /// The best validated run found.
    pub run: MppRun,
    /// Its total cost under the instance model.
    pub total: u64,
    /// Which worker produced the winning strategy.
    pub provenance: String,
    /// Per-worker contributions, in spawn order.
    pub entries: Vec<PortfolioEntry>,
    /// `true` when the exact solver finished, so `total` is OPT.
    pub proven_optimal: bool,
}

/// The cross-thread incumbent: an atomic bound for cheap reads plus the
/// mutex-guarded best strategy for steals and the final answer.
struct Shared {
    bound: AtomicU64,
    best: Mutex<Option<(u64, Vec<MppMove>, String)>>,
    optimal: AtomicBool,
}

impl Shared {
    fn new() -> Self {
        Shared {
            bound: AtomicU64::new(u64::MAX),
            best: Mutex::new(None),
            optimal: AtomicBool::new(false),
        }
    }

    /// Publishes `(total, moves)` when strictly better than the current
    /// incumbent. Returns whether it became the new best.
    fn submit(&self, total: u64, moves: Vec<MppMove>, name: &str) -> bool {
        if total >= self.bound.load(Ordering::Relaxed) {
            return false;
        }
        let mut guard = self.best.lock().unwrap();
        let better = guard.as_ref().is_none_or(|(t, _, _)| total < *t);
        if better {
            self.bound.store(total, Ordering::Relaxed);
            *guard = Some((total, moves, name.to_string()));
            drop(guard);
            rbp_trace::gauge("portfolio.incumbent", total as f64);
        }
        better
    }

    /// Clones the current best move list (for work stealing).
    fn steal(&self) -> Option<(u64, Vec<MppMove>)> {
        self.best
            .lock()
            .unwrap()
            .as_ref()
            .map(|(t, m, _)| (*t, m.clone()))
    }
}

/// Races all registered schedulers, `cfg.refine_workers` refinement
/// workers, and (when feasible and enabled) the exact solver on
/// `instance`, returning the best strategy found with provenance.
///
/// The topological baseline runs first on the calling thread, so an
/// infeasible instance fails fast with its error and every refinement
/// worker has a valid strategy to steal from the start.
pub fn race(instance: &MppInstance, cfg: &PortfolioConfig) -> Result<PortfolioOutcome, MppError> {
    let _span = rbp_trace::span_with(
        "portfolio.race",
        vec![
            ("n", rbp_trace::Json::from(instance.dag.n())),
            ("k", rbp_trace::Json::from(instance.k)),
            ("r", rbp_trace::Json::from(instance.r)),
            ("budget_ms", rbp_trace::Json::from(cfg.budget_millis)),
            ("seed", rbp_trace::Json::from(cfg.seed)),
            ("mode", rbp_trace::Json::from(cfg.mode.token())),
        ],
    );
    let shared = Shared::new();
    let deadline = Instant::now() + Duration::from_millis(cfg.budget_millis);

    // Seed the incumbent synchronously; propagates infeasibility.
    let schedulers = all_schedulers();
    let mut entries: Vec<PortfolioEntry> = Vec::new();
    {
        let started = Instant::now();
        let base = schedulers[0].schedule(instance)?;
        let merged = batchify(instance, &base.strategy);
        let total = validate_mpp(instance, &merged.moves)?.total(instance.model);
        shared.submit(total, merged.moves, &schedulers[0].name());
        entries.push(PortfolioEntry {
            name: schedulers[0].name(),
            total: Some(total),
            millis: elapsed_ms(started),
        });
    }

    let exact_feasible = cfg.use_exact && instance.dag.n() <= 64 && (1..=4).contains(&instance.k);

    let late_entries: Vec<PortfolioEntry> = std::thread::scope(|scope| {
        let shared = &shared;
        let mut handles = Vec::new();

        for sched in &schedulers[1..] {
            handles.push(scope.spawn(move || {
                let started = Instant::now();
                let name = sched.name();
                let Ok(run) = sched.schedule(instance) else {
                    return PortfolioEntry {
                        name,
                        total: None,
                        millis: elapsed_ms(started),
                    };
                };
                let merged = batchify(instance, &run.strategy);
                let total = match validate_mpp(instance, &merged.moves) {
                    Ok(c) => c.total(instance.model),
                    Err(_) => {
                        return PortfolioEntry {
                            name,
                            total: None,
                            millis: elapsed_ms(started),
                        }
                    }
                };
                shared.submit(total, merged.moves, &format!("{name}+batchify"));
                PortfolioEntry {
                    name,
                    total: Some(total),
                    millis: elapsed_ms(started),
                }
            }));
        }

        if exact_feasible {
            let search = SearchConfig::default()
                .with_limits(SolveLimits::states(cfg.exact_max_states))
                .with_threads(cfg.exact_threads.max(1))
                .with_partition(cfg.exact_partition);
            handles.push(scope.spawn(move || {
                let started = Instant::now();
                let sol = solve_mpp_with(instance, &search).solution;
                let total = sol.map(|sol| {
                    shared.submit(sol.total, sol.strategy.moves, "exact-a*");
                    shared.optimal.store(true, Ordering::Relaxed);
                    sol.total
                });
                PortfolioEntry {
                    name: "exact-a*".to_string(),
                    total,
                    millis: elapsed_ms(started),
                }
            }));
        }

        if exact_feasible && cfg.mode.is_hier() {
            // The three-level solver explores the green-augmented state
            // space, and the flattening projection turns its witness
            // into a legal two-level strategy — a consistency lane that
            // can seed the incumbent with structure the two-level
            // search reaches later (never a proof of MPP optimality).
            let search = SearchConfig::default()
                .with_limits(SolveLimits::states(cfg.exact_max_states))
                .with_threads(1);
            let mode = cfg.mode;
            handles.push(scope.spawn(move || {
                let started = Instant::now();
                let hinst =
                    rbp_hier::HierInstance::from_mode(instance, mode).expect("is_hier was checked");
                let total = rbp_hier::solve_hier_with(&hinst, &search)
                    .solution
                    .and_then(|sol| {
                        let projected = rbp_hier::hier_to_mpp(&hinst, &sol.strategy);
                        let cost = validate_mpp(instance, &projected.moves).ok()?;
                        let total = cost.total(instance.model);
                        shared.submit(total, projected.moves, "hier-exact(projected)");
                        Some(total)
                    });
                PortfolioEntry {
                    name: "hier-exact".to_string(),
                    total,
                    millis: elapsed_ms(started),
                }
            }));
        }

        for w in 0..cfg.refine_workers {
            let seed = cfg.seed.wrapping_add(0x9e37 * (w as u64 + 1));
            handles.push(scope.spawn(move || {
                let started = Instant::now();
                let mut rng = Rng::new(seed);
                let mut best: Option<u64> = None;
                while Instant::now() < deadline && !shared.optimal.load(Ordering::Relaxed) {
                    // Steal the incumbent; diversify with a fresh greedy
                    // build once in a while so workers don't all polish
                    // the same local optimum.
                    let initial = match shared.steal() {
                        Some((_, moves)) if !rng.bool(0.25) => MppStrategy::from_moves(moves),
                        _ => match recreate::greedy_from_scratch(instance, &mut rng) {
                            Ok(run) => run.strategy,
                            Err(_) => break,
                        },
                    };
                    let left = deadline.saturating_duration_since(Instant::now());
                    let chunk = u64::try_from(left.as_millis()).unwrap_or(u64::MAX).min(150);
                    if chunk == 0 {
                        break;
                    }
                    let rcfg = RefineConfig {
                        seed: rng.next_u64(),
                        budget: Budget::millis(chunk),
                        driver: Driver::Auto,
                    };
                    let Ok(out) = refine(instance, &initial, &rcfg) else {
                        break;
                    };
                    shared.submit(out.total, out.run.strategy.moves, &format!("refine-w{w}"));
                    best = Some(best.map_or(out.total, |b: u64| b.min(out.total)));
                }
                PortfolioEntry {
                    name: format!("refine-w{w}"),
                    total: best,
                    millis: elapsed_ms(started),
                }
            }));
        }

        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    entries.extend(late_entries);

    let (total, moves, provenance) = shared
        .best
        .into_inner()
        .unwrap()
        .expect("baseline scheduler seeded the incumbent");
    let strategy = MppStrategy::from_moves(moves);
    let cost = validate_mpp(instance, &strategy.moves)?;
    debug_assert_eq!(cost.total(instance.model), total);
    let proven_optimal = shared.optimal.load(Ordering::Relaxed);
    rbp_trace::event(
        "portfolio.winner",
        vec![
            ("provenance", rbp_trace::Json::from(provenance.as_str())),
            ("total", rbp_trace::Json::from(total)),
            ("proven_optimal", rbp_trace::Json::from(proven_optimal)),
        ],
    );
    Ok(PortfolioOutcome {
        run: MppRun { strategy, cost },
        total,
        provenance,
        entries,
        proven_optimal,
    })
}

fn elapsed_ms(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_millis()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbp_dag::generators;
    use rbp_schedulers::MppScheduler;

    #[test]
    fn race_beats_or_matches_baseline_and_validates() {
        let dag = generators::grid(3, 3);
        let inst = MppInstance::new(&dag, 2, 3, 2);
        let base = rbp_schedulers::TopoBaseline
            .schedule(&inst)
            .unwrap()
            .cost
            .total(inst.model);
        let cfg = PortfolioConfig {
            budget_millis: 400,
            ..PortfolioConfig::default()
        };
        let out = race(&inst, &cfg).unwrap();
        assert!(out.total <= base);
        let cost = validate_mpp(&inst, &out.run.strategy.moves).unwrap();
        assert_eq!(cost.total(inst.model), out.total);
        assert!(!out.entries.is_empty());
        assert!(!out.provenance.is_empty());
    }

    #[test]
    fn exact_win_is_marked_optimal() {
        // Tiny instance: the exact solver must finish and claim the race.
        let dag = generators::chain(4);
        let inst = MppInstance::new(&dag, 1, 2, 2);
        let cfg = PortfolioConfig {
            budget_millis: 2000,
            ..PortfolioConfig::default()
        };
        let out = race(&inst, &cfg).unwrap();
        assert!(out.proven_optimal);
        assert_eq!(out.total, 4, "chain(4) OPT is 4 computes");
    }

    #[test]
    fn exact_disabled_still_returns_validated_best() {
        let dag = generators::independent_chains(2, 4);
        let inst = MppInstance::new(&dag, 2, 3, 2);
        let cfg = PortfolioConfig {
            budget_millis: 500,
            use_exact: false,
            ..PortfolioConfig::default()
        };
        let out = race(&inst, &cfg).unwrap();
        assert!(!out.proven_optimal);
        validate_mpp(&inst, &out.run.strategy.moves).unwrap();
        // Refinement should strip the baseline's useless I/O entirely.
        assert_eq!(out.total, 4, "refined cost should reach OPT=4");
    }

    #[test]
    fn hier_mode_adds_a_projected_lane() {
        let dag = generators::grid(2, 3);
        let inst = MppInstance::new(&dag, 2, 3, 2);
        let cfg = PortfolioConfig {
            budget_millis: 300,
            mode: GameMode::Hier {
                green_cap: 2,
                green_cost: 1,
            },
            ..PortfolioConfig::default()
        };
        let out = race(&inst, &cfg).unwrap();
        let hier = out
            .entries
            .iter()
            .find(|e| e.name == "hier-exact")
            .expect("hier mode spawns the projected lane");
        // The flattened witness is a legal two-level strategy, so its
        // total can never undercut the proven two-level optimum.
        assert!(out.proven_optimal);
        assert!(hier.total.expect("tiny instance solves") >= out.total);

        // Vanilla mode (the default) never spawns the lane.
        let plain = race(
            &inst,
            &PortfolioConfig {
                budget_millis: 100,
                ..PortfolioConfig::default()
            },
        )
        .unwrap();
        assert!(plain.entries.iter().all(|e| e.name != "hier-exact"));
    }

    #[test]
    fn infeasible_instance_fails_fast() {
        let dag = generators::binary_in_tree(4);
        // r = 2 < max_in_degree + 1 = 3: no strategy exists.
        let inst = MppInstance::new(&dag, 2, 2, 2);
        assert!(race(&inst, &PortfolioConfig::default()).is_err());
    }
}
