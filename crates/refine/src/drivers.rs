//! Anytime metaheuristic drivers over the neighborhood model.
//!
//! All drivers are *anytime*: they keep a validated incumbent at all
//! times, improve it monotonically, and stop at a wall-clock or
//! proposal-count budget — the step budget makes runs bit-deterministic
//! per seed, which the tests rely on. Three strategies are provided:
//!
//! - [`Driver::HillClimb`] — first-improvement descent: accept the
//!   first strictly improving neighbor, with occasional cost-neutral
//!   sideways steps to slide along plateaus;
//! - [`Driver::Anneal`] — simulated annealing with geometric cooling
//!   and automatic *reheating* when the walk freezes, so long budgets
//!   keep exploring instead of converging early;
//! - [`Driver::Lns`] — large-neighborhood "ruin & recreate": cut the
//!   incumbent at a random point and greedily reschedule the tail
//!   (see [`crate::recreate`]);
//! - [`Driver::Auto`] (default) — interleaves hill climbing to a local
//!   optimum with ruin-and-recreate kicks, restarting the descent from
//!   every improved rebuild.
//!
//! Every accepted incumbent re-validates through
//! [`rbp_core::mpp::strategy::validate`]; costs are only ever read off
//! a successful validation.

use std::time::Instant;

use rbp_core::{validate_mpp, MppError, MppInstance, MppMove, MppRun, MppStrategy};
use rbp_trace::CounterSet;
use rbp_util::Rng;

use crate::neighborhood::{MoveKind, Neighborhood};
use crate::recreate;

/// Stop conditions for a refinement run (whichever trips first).
#[derive(Debug, Clone, Copy)]
pub struct Budget {
    /// Wall-clock limit in milliseconds.
    pub max_millis: u64,
    /// Maximum number of proposals (deterministic budget).
    pub max_proposals: u64,
}

impl Budget {
    /// Wall-clock budget only.
    #[must_use]
    pub fn millis(ms: u64) -> Self {
        Budget {
            max_millis: ms,
            max_proposals: u64::MAX,
        }
    }

    /// Proposal-count budget only (bit-deterministic per seed).
    #[must_use]
    pub fn proposals(n: u64) -> Self {
        Budget {
            max_millis: u64::MAX,
            max_proposals: n,
        }
    }
}

impl Default for Budget {
    /// One second of wall clock.
    fn default() -> Self {
        Budget::millis(1000)
    }
}

/// Which metaheuristic drives the search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Driver {
    /// First-improvement hill climbing.
    HillClimb,
    /// Simulated annealing with reheating.
    Anneal,
    /// Large-neighborhood ruin & recreate.
    Lns,
    /// Hill climbing with ruin-and-recreate kicks (the default).
    #[default]
    Auto,
}

impl Driver {
    /// Stable name used in provenance strings and trace fields.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Driver::HillClimb => "hill",
            Driver::Anneal => "anneal",
            Driver::Lns => "lns",
            Driver::Auto => "auto",
        }
    }
}

/// Configuration of one refinement run.
#[derive(Debug, Clone, Copy, Default)]
pub struct RefineConfig {
    /// Base RNG seed (combine with [`rbp_util::env_seed`] for
    /// `RBP_SEED` plumbing).
    pub seed: u64,
    /// Stop conditions.
    pub budget: Budget,
    /// The metaheuristic to run.
    pub driver: Driver,
}

/// The result of a refinement run.
#[derive(Debug, Clone)]
pub struct RefineOutcome {
    /// Best strategy found (always validates; equals the input when no
    /// improvement was found).
    pub run: MppRun,
    /// Total cost of [`RefineOutcome::run`] under the instance model.
    pub total: u64,
    /// Total cost of the initial strategy (after validation).
    pub initial_total: u64,
    /// Neighbors proposed.
    pub proposals: u64,
    /// Neighbors accepted (including sideways/uphill moves).
    pub accepted: u64,
    /// Annealing reheats or LNS kicks performed.
    pub reheats: u64,
    /// Human-readable lineage, e.g. `"auto(seed=7)"`.
    pub provenance: String,
}

/// Refines `initial` for `instance` under `cfg` and returns the best
/// strategy found. The initial strategy must be valid — an invalid
/// input is an error, not a silent restart.
///
/// Emits an `refine.run` trace span, a `refine.incumbent` gauge at every
/// improvement, and `refine.{proposed,accepted,invalid}.<move>` counters
/// on completion (all no-ops when tracing is off).
pub fn refine(
    instance: &MppInstance,
    initial: &MppStrategy,
    cfg: &RefineConfig,
) -> Result<RefineOutcome, MppError> {
    let initial_cost = validate_mpp(instance, &initial.moves)?;
    let initial_total = initial_cost.total(instance.model);
    let _span = rbp_trace::span_with(
        "refine.run",
        vec![
            ("driver", rbp_trace::Json::from(cfg.driver.name())),
            ("seed", rbp_trace::Json::from(cfg.seed)),
            ("n", rbp_trace::Json::from(instance.dag.n())),
            ("k", rbp_trace::Json::from(instance.k)),
            ("initial_total", rbp_trace::Json::from(initial_total)),
        ],
    );

    let mut search = Search {
        nb: Neighborhood::new(*instance),
        rng: Rng::new(cfg.seed ^ 0x5eed_ab1e),
        counters: CounterSet::new(),
        started: Instant::now(),
        budget: cfg.budget,
        proposals: 0,
        accepted: 0,
        reheats: 0,
        best_moves: initial.moves.clone(),
        best_total: initial_total,
    };
    // Free first move: re-batching the input never costs budget.
    search.try_accept_global(MoveKind::Batchify, |inst, moves| {
        Some(rbp_core::batchify(inst, &MppStrategy::from_moves(moves.to_vec())).moves)
    });

    match cfg.driver {
        Driver::HillClimb => search.hill_climb(u64::MAX),
        Driver::Anneal => search.anneal(),
        Driver::Lns => search.lns_loop(),
        Driver::Auto => search.auto(),
    }

    let best = MppStrategy::from_moves(search.best_moves.clone());
    let cost = validate_mpp(instance, &best.moves)?;
    debug_assert_eq!(cost.total(instance.model), search.best_total);
    if rbp_trace::enabled() {
        search.counters.emit("refine.");
        rbp_trace::gauge("refine.final_total", search.best_total as f64);
    }
    Ok(RefineOutcome {
        run: MppRun {
            strategy: best,
            cost,
        },
        total: search.best_total,
        initial_total,
        proposals: search.proposals,
        accepted: search.accepted,
        reheats: search.reheats,
        provenance: format!("{}(seed={})", cfg.driver.name(), cfg.seed),
    })
}

/// Shared state of one running search.
struct Search<'a> {
    nb: Neighborhood<'a>,
    rng: Rng,
    counters: CounterSet,
    started: Instant,
    budget: Budget,
    proposals: u64,
    accepted: u64,
    reheats: u64,
    best_moves: Vec<MppMove>,
    best_total: u64,
}

impl Search<'_> {
    fn in_budget(&self) -> bool {
        self.proposals < self.budget.max_proposals
            && (self.budget.max_millis == u64::MAX
                || self.started.elapsed().as_millis() < u128::from(self.budget.max_millis))
    }

    fn record(&mut self, kind: MoveKind, outcome: &str) {
        self.counters.add(&format!("{outcome}.{}", kind.name()), 1);
    }

    fn improve_best(&mut self, moves: Vec<MppMove>, total: u64) {
        self.best_moves = moves;
        self.best_total = total;
        rbp_trace::gauge("refine.incumbent", total as f64);
    }

    /// Applies a whole-strategy transform to the incumbent and keeps it
    /// when it does not regress.
    fn try_accept_global(
        &mut self,
        kind: MoveKind,
        f: impl FnOnce(&MppInstance, &[MppMove]) -> Option<Vec<MppMove>>,
    ) {
        let Some(candidate) = f(self.nb.instance(), &self.best_moves) else {
            return;
        };
        self.record(kind, "proposed");
        match self.nb.evaluate(&candidate) {
            Some(total) if total <= self.best_total => {
                self.record(kind, "accepted");
                if total < self.best_total {
                    self.improve_best(candidate, total);
                } else {
                    self.best_moves = candidate;
                }
            }
            Some(_) => {}
            None => self.record(kind, "invalid"),
        }
    }

    /// First-improvement descent on `best`, with sideways steps.
    /// Returns after `stall_limit` consecutive non-improving proposals
    /// (a local optimum) or when the budget runs out.
    fn hill_climb(&mut self, stall_limit: u64) {
        let mut current = self.best_moves.clone();
        let mut cur_total = self.best_total;
        let mut stalls = 0u64;
        let limit = stall_limit.min(64 + 8 * current.len() as u64);
        while self.in_budget() && stalls < limit {
            self.proposals += 1;
            let Some(c) = self.nb.propose(&current, &mut self.rng) else {
                stalls += 1;
                continue;
            };
            self.record(c.kind, "proposed");
            match self.nb.evaluate(&c.moves) {
                Some(total) if total < cur_total => {
                    self.record(c.kind, "accepted");
                    self.accepted += 1;
                    current = c.moves;
                    cur_total = total;
                    stalls = 0;
                    if total < self.best_total {
                        self.improve_best(current.clone(), total);
                    }
                }
                Some(total) if total == cur_total && self.rng.bool(0.25) => {
                    // Sideways: slide along the plateau but keep the
                    // stall counter running so plateaus still terminate.
                    self.record(c.kind, "accepted");
                    self.accepted += 1;
                    current = c.moves;
                    stalls += 1;
                }
                Some(_) => stalls += 1,
                None => {
                    self.record(c.kind, "invalid");
                    stalls += 1;
                }
            }
        }
    }

    /// Simulated annealing with geometric cooling and reheating.
    fn anneal(&mut self) {
        let mut current = self.best_moves.clone();
        let mut cur_total = self.best_total;
        let t0 = (self.best_total as f64 / 10.0).max(1.0);
        let mut temp = t0;
        let alpha = 0.999;
        while self.in_budget() {
            self.proposals += 1;
            if let Some(c) = self.nb.propose(&current, &mut self.rng) {
                self.record(c.kind, "proposed");
                match self.nb.evaluate(&c.moves) {
                    Some(total) => {
                        let dt = total as f64 - cur_total as f64;
                        if dt <= 0.0 || self.rng.f64() < (-dt / temp).exp() {
                            self.record(c.kind, "accepted");
                            self.accepted += 1;
                            current = c.moves;
                            cur_total = total;
                            if total < self.best_total {
                                self.improve_best(current.clone(), total);
                            }
                        }
                    }
                    None => self.record(c.kind, "invalid"),
                }
            }
            temp *= alpha;
            if temp < 0.01 {
                // Frozen: reheat from the incumbent.
                self.reheats += 1;
                rbp_trace::counter("refine.reheats", 1);
                current = self.best_moves.clone();
                cur_total = self.best_total;
                temp = t0 * 0.5f64.powi(i32::try_from(self.reheats.min(8)).unwrap_or(8));
            }
        }
    }

    /// Pure large-neighborhood search: repeated ruin & recreate from the
    /// incumbent.
    fn lns_loop(&mut self) {
        while self.in_budget() {
            self.lns_kick();
        }
    }

    /// One ruin-and-recreate kick from the incumbent: random cut,
    /// greedy rebuild, re-batch, accept on non-regression.
    fn lns_kick(&mut self) {
        self.proposals += 1;
        self.reheats += 1;
        let cut = self.rng.index(self.best_moves.len() + 1);
        self.record(MoveKind::RuinRecreate, "proposed");
        let rebuilt = recreate::ruin_recreate(
            self.nb.instance(),
            &self.best_moves.clone(),
            cut,
            &mut self.rng,
        );
        let Ok(run) = rebuilt else {
            self.record(MoveKind::RuinRecreate, "invalid");
            return;
        };
        let merged = rbp_core::batchify(self.nb.instance(), &run.strategy);
        match self.nb.evaluate(&merged.moves) {
            Some(total) if total < self.best_total => {
                self.record(MoveKind::RuinRecreate, "accepted");
                self.accepted += 1;
                self.improve_best(merged.moves, total);
            }
            Some(total) if total == self.best_total && self.rng.bool(0.5) => {
                // Equal-cost rebuilds diversify the incumbent's shape.
                self.record(MoveKind::RuinRecreate, "accepted");
                self.accepted += 1;
                self.best_moves = merged.moves;
            }
            Some(_) => {}
            None => self.record(MoveKind::RuinRecreate, "invalid"),
        }
    }

    /// Hill climbing restarted by ruin-and-recreate kicks.
    fn auto(&mut self) {
        while self.in_budget() {
            self.hill_climb(u64::MAX);
            if !self.in_budget() {
                return;
            }
            self.lns_kick();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbp_core::MppSimulator;
    use rbp_dag::generators;
    use rbp_schedulers::{MppScheduler, TopoBaseline};

    fn baseline(inst: &MppInstance) -> MppStrategy {
        TopoBaseline.schedule(inst).unwrap().strategy
    }

    #[test]
    fn refine_never_regresses_and_validates() {
        for (dag, k, r, g) in [
            (generators::grid(3, 3), 2, 3, 2),
            (generators::binary_in_tree(4), 2, 3, 3),
            (generators::layered_random(3, 4, 2, 1), 3, 3, 2),
        ] {
            let inst = MppInstance::new(&dag, k, r, g);
            let init = baseline(&inst);
            let cfg = RefineConfig {
                seed: 1,
                budget: Budget::proposals(1500),
                driver: Driver::Auto,
            };
            let out = refine(&inst, &init, &cfg).unwrap();
            assert!(out.total <= out.initial_total, "{}", dag.name());
            let cost = validate_mpp(&inst, &out.run.strategy.moves).unwrap();
            assert_eq!(cost.total(inst.model), out.total);
        }
    }

    #[test]
    fn all_drivers_improve_the_slack_baseline() {
        let dag = generators::independent_chains(2, 4);
        let inst = MppInstance::new(&dag, 2, 3, 2);
        let init = baseline(&inst);
        let init_total = validate_mpp(&inst, &init.moves).unwrap().total(inst.model);
        for driver in [Driver::HillClimb, Driver::Anneal, Driver::Lns, Driver::Auto] {
            let cfg = RefineConfig {
                seed: 3,
                budget: Budget::proposals(1200),
                driver,
            };
            let out = refine(&inst, &init, &cfg).unwrap();
            assert!(
                out.total < init_total,
                "{:?} failed to improve: {} vs {}",
                driver,
                out.total,
                init_total
            );
        }
    }

    #[test]
    fn auto_reaches_opt_on_parallel_chains() {
        // OPT = 4: two length-4 chains, k=2, r=3 — four fully batched
        // compute steps (verified against the exact solver elsewhere).
        let dag = generators::independent_chains(2, 4);
        let inst = MppInstance::new(&dag, 2, 3, 2);
        let init = baseline(&inst);
        let cfg = RefineConfig {
            seed: 1,
            budget: Budget::proposals(4000),
            driver: Driver::Auto,
        };
        let out = refine(&inst, &init, &cfg).unwrap();
        assert_eq!(out.total, 4, "refinement should close the gap to OPT");
    }

    #[test]
    fn deterministic_per_seed_with_proposal_budget() {
        let dag = generators::grid(3, 3);
        let inst = MppInstance::new(&dag, 2, 3, 2);
        let init = baseline(&inst);
        let cfg = RefineConfig {
            seed: 77,
            budget: Budget::proposals(800),
            driver: Driver::Auto,
        };
        let a = refine(&inst, &init, &cfg).unwrap();
        let b = refine(&inst, &init, &cfg).unwrap();
        assert_eq!(a.total, b.total);
        assert_eq!(a.run.strategy, b.run.strategy);
        assert_eq!(a.proposals, b.proposals);
    }

    #[test]
    fn invalid_initial_strategy_is_an_error() {
        let dag = generators::chain(2);
        let inst = MppInstance::new(&dag, 1, 2, 1);
        // Compute the child first: invalid.
        let bogus = MppStrategy::from_moves(vec![MppMove::compute1(0, rbp_dag::NodeId(1))]);
        assert!(refine(&inst, &bogus, &RefineConfig::default()).is_err());
    }

    #[test]
    fn refine_accepts_simulator_built_runs() {
        let dag = generators::chain(3);
        let inst = MppInstance::new(&dag, 1, 2, 2);
        let mut sim = MppSimulator::new(inst);
        for i in 0..3 {
            sim.compute(vec![(0, rbp_dag::NodeId(i))]).unwrap();
            if i > 0 {
                sim.remove_red(0, rbp_dag::NodeId(i - 1)).unwrap();
            }
        }
        let run = sim.finish().unwrap();
        let out = refine(
            &inst,
            &run.strategy,
            &RefineConfig {
                seed: 0,
                budget: Budget::proposals(200),
                driver: Driver::HillClimb,
            },
        )
        .unwrap();
        // Already optimal: 3 computes, nothing to shave.
        assert_eq!(out.total, 3);
    }
}
