//! # rbp-trace — the unified observability layer
//!
//! Every solver, scheduler, bound, experiment binary, and CLI subcommand
//! in this workspace reports progress through this crate: structured
//! **span** enter/exit events, monotonic **counters**, **gauges**, and
//! whole result **tables**, serialized as one JSON object per line
//! (JSONL) behind a stable **run-manifest header** (tool name, git
//! revision, seed, instance hash, solver configuration). `rbp report`
//! re-renders a trace file into the EXPERIMENTS.md comparison tables via
//! [`report::render`].
//!
//! ## Design
//!
//! - **Zero external dependencies.** Serialization reuses the vendored
//!   [`rbp_util::json`] writer; parsing (for reports) reuses its parser.
//! - **One global tracer, disabled by default.** Library code calls
//!   [`counter`], [`gauge`], [`span`], [`event`], or [`table`]
//!   unconditionally; when no sink is installed each call is an inlined
//!   relaxed atomic load and an immediate return, so instrumentation in
//!   hot paths costs a predictable branch and nothing else. Solver inner
//!   loops additionally batch their tallies locally (see
//!   `rbp_core::SearchStats`) and emit once per solve.
//! - **Sinks are pluggable.** [`JsonlSink`] streams to a file,
//!   [`MemorySink`] captures lines for tests, and anything implementing
//!   [`Sink`] can be installed with [`install`].
//!
//! ## Example
//!
//! ```
//! use rbp_trace::{CounterSet, Manifest, MemorySink};
//!
//! let (sink, lines) = MemorySink::new();
//! rbp_trace::install(Box::new(sink), Manifest::new("doc-example").field("seed", 42u64));
//! {
//!     let _span = rbp_trace::span("solve");
//!     rbp_trace::counter("solver.settled", 17);
//!     rbp_trace::gauge("solver.tightness", 0.93);
//! }
//! rbp_trace::uninstall();
//!
//! let lines = lines.lock().unwrap();
//! assert!(lines[0].contains("\"type\":\"manifest\""));
//! assert!(lines.iter().any(|l| l.contains("solver.settled")));
//!
//! // Accumulate counters locally, then emit in one go:
//! let mut c = CounterSet::new();
//! c.add("evictions", 3);
//! assert_eq!(c.get("evictions"), 3);
//! ```

#![deny(missing_docs)]

pub mod counters;
pub mod manifest;
pub mod report;
pub mod sink;

pub use counters::CounterSet;
pub use manifest::{git_rev, hash_hex, Manifest};
pub use sink::{JsonlSink, MemorySink, Sink};

/// The JSON value type used for event fields, re-exported so
/// instrumented crates can build [`event`]/[`span_with`] payloads
/// without depending on `rbp-util` directly.
pub use rbp_util::json::Json;

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// The trace schema version emitted in every manifest (bump on breaking
/// changes to event shapes; documented in `docs/SCHEMAS.md`).
pub const SCHEMA_VERSION: u64 = 1;

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static TRACER: Mutex<Option<Tracer>> = Mutex::new(None);

struct Tracer {
    sink: Box<dyn Sink>,
    epoch: Instant,
}

/// Whether a sink is currently installed. Callers building non-trivial
/// event payloads (e.g. formatting a table) should check this first;
/// plain [`counter`]/[`gauge`]/[`span`] calls don't need to.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Installs `sink` as the global trace destination and writes the
/// manifest header as the first line. Replaces (and flushes) any
/// previously installed sink.
pub fn install(sink: Box<dyn Sink>, manifest: Manifest) {
    let mut guard = TRACER.lock().unwrap();
    if let Some(mut old) = guard.take() {
        old.sink.flush();
    }
    let mut tracer = Tracer {
        sink,
        epoch: Instant::now(),
    };
    tracer.sink.record(&manifest.to_json().render());
    *guard = Some(tracer);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Flushes and removes the installed sink; subsequent emit calls are
/// no-ops again.
pub fn uninstall() {
    let mut guard = TRACER.lock().unwrap();
    ENABLED.store(false, Ordering::Relaxed);
    if let Some(mut tracer) = guard.take() {
        tracer.sink.flush();
    }
}

/// Flushes the installed sink without removing it (e.g. before spawning
/// a subprocess whose output should interleave sanely).
pub fn flush() {
    if let Some(tracer) = TRACER.lock().unwrap().as_mut() {
        tracer.sink.flush();
    }
}

fn emit_line(build: impl FnOnce(u64) -> Json) {
    let mut guard = TRACER.lock().unwrap();
    if let Some(tracer) = guard.as_mut() {
        let ts = u64::try_from(tracer.epoch.elapsed().as_micros()).unwrap_or(u64::MAX);
        let line = build(ts).render();
        tracer.sink.record(&line);
    }
}

/// Emits a monotonic counter increment: `{"type":"counter","name":…,
/// "value":…}`. `value` is the delta observed since the last emission of
/// the same name (consumers sum per name).
#[inline]
pub fn counter(name: &str, value: u64) {
    if !enabled() {
        return;
    }
    emit_line(|ts| {
        Json::obj([
            ("type", Json::from("counter")),
            ("ts_us", Json::from(ts)),
            ("name", Json::from(name)),
            ("value", Json::from(value)),
        ])
    });
}

/// Emits a point-in-time gauge: `{"type":"gauge", …}`. Consumers keep
/// the last value per name.
#[inline]
pub fn gauge(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    emit_line(|ts| {
        Json::obj([
            ("type", Json::from("gauge")),
            ("ts_us", Json::from(ts)),
            ("name", Json::from(name)),
            ("value", Json::from(value)),
        ])
    });
}

/// Emits a free-form structured event with a name and key/value fields.
#[inline]
pub fn event(name: &str, fields: Vec<(&str, Json)>) {
    if !enabled() {
        return;
    }
    emit_line(|ts| {
        Json::obj([
            ("type", Json::from("event")),
            ("ts_us", Json::from(ts)),
            ("name", Json::from(name)),
            ("fields", Json::obj(fields)),
        ])
    });
}

/// Emits a result table (headers + string rows). `rbp report` renders
/// these back into the EXPERIMENTS.md markdown tables.
pub fn table(name: &str, headers: &[String], rows: &[Vec<String>]) {
    if !enabled() {
        return;
    }
    emit_line(|ts| {
        Json::obj([
            ("type", Json::from("table")),
            ("ts_us", Json::from(ts)),
            ("name", Json::from(name)),
            (
                "headers",
                Json::arr(headers.iter().map(|h| Json::from(h.as_str()))),
            ),
            (
                "rows",
                Json::arr(
                    rows.iter()
                        .map(|r| Json::arr(r.iter().map(|c| Json::from(c.as_str())))),
                ),
            ),
        ])
    });
}

/// Starts a span: emits `span_enter` now and `span_exit` (with
/// `elapsed_us`) when the returned guard drops. When tracing is
/// disabled the guard is inert.
#[must_use]
pub fn span(name: &str) -> SpanGuard {
    span_with(name, Vec::new())
}

/// [`span`] with key/value fields attached to the enter event.
#[must_use]
pub fn span_with(name: &str, fields: Vec<(&str, Json)>) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            id: 0,
            name: String::new(),
            start: None,
        };
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    emit_line(|ts| {
        let mut obj = vec![
            ("type".to_string(), Json::from("span_enter")),
            ("ts_us".to_string(), Json::from(ts)),
            ("id".to_string(), Json::from(id)),
            ("name".to_string(), Json::from(name)),
        ];
        if !fields.is_empty() {
            obj.push(("fields".to_string(), Json::obj(fields)));
        }
        Json::Obj(obj)
    });
    SpanGuard {
        id,
        name: name.to_string(),
        start: Some(Instant::now()),
    }
}

/// RAII guard for an open span; emits the `span_exit` event on drop.
#[derive(Debug)]
pub struct SpanGuard {
    id: u64,
    name: String,
    start: Option<Instant>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let elapsed = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
        if !enabled() {
            return;
        }
        emit_line(|ts| {
            Json::obj([
                ("type", Json::from("span_exit")),
                ("ts_us", Json::from(ts)),
                ("id", Json::from(self.id)),
                ("name", Json::from(self.name.as_str())),
                ("elapsed_us", Json::from(elapsed)),
            ])
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Global-tracer tests share one mutable global; run the whole
    // pipeline in a single test so parallel test threads cannot
    // interleave installs.
    #[test]
    fn global_pipeline_end_to_end() {
        let (sink, lines) = MemorySink::new();
        install(Box::new(sink), Manifest::new("unit").field("seed", 7u64));
        assert!(enabled());
        {
            let _s = span_with("outer", vec![("k", Json::from(2u64))]);
            counter("c.x", 3);
            counter("c.x", 2);
            gauge("g.y", 1.25);
            event("note", vec![("msg", Json::from("hi"))]);
            table(
                "T",
                &["a".to_string(), "b".to_string()],
                &[vec!["1".to_string(), "2".to_string()]],
            );
        }
        uninstall();
        assert!(!enabled());
        counter("c.after", 1); // must be a no-op

        let lines = lines.lock().unwrap();
        let parsed: Vec<Json> = lines.iter().map(|l| Json::parse(l).unwrap()).collect();
        let ty = |j: &Json| j.get("type").unwrap().as_str().unwrap().to_string();
        assert_eq!(ty(&parsed[0]), "manifest");
        assert_eq!(parsed[0].get("tool").unwrap().as_str(), Some("unit"));
        assert_eq!(
            parsed[0].get("schema").unwrap().as_u64(),
            Some(SCHEMA_VERSION)
        );
        assert_eq!(parsed[0].get("seed").unwrap().as_u64(), Some(7));
        let types: Vec<String> = parsed[1..].iter().map(&ty).collect();
        assert_eq!(
            types,
            [
                "span_enter",
                "counter",
                "counter",
                "gauge",
                "event",
                "table",
                "span_exit"
            ]
        );
        // Counter deltas preserved; span ids match across enter/exit.
        assert_eq!(parsed[2].get("value").unwrap().as_u64(), Some(3));
        assert_eq!(parsed[3].get("value").unwrap().as_u64(), Some(2));
        assert_eq!(
            parsed[1].get("id").unwrap().as_u64(),
            parsed[7].get("id").unwrap().as_u64()
        );
        assert!(parsed[7].get("elapsed_us").unwrap().as_u64().is_some());
        assert!(!lines.iter().any(|l| l.contains("c.after")));
    }

    #[test]
    fn disabled_span_guard_is_inert() {
        // No sink installed in this thread's view: the guard must not
        // panic or allocate event lines on drop.
        let g = SpanGuard {
            id: 0,
            name: String::new(),
            start: None,
        };
        drop(g);
    }
}
