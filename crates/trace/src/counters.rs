//! Named counter accumulation.
//!
//! [`CounterSet`] is the workspace's one way to tally named `u64`
//! counts: solver run statistics, scheduler I/O classification, and
//! microbenchmark extra payloads all use it instead of hand-rolled
//! `Vec<(String, u64)>` / `HashMap` copies. Insertion order is
//! preserved so serialized artifacts diff cleanly.

use rbp_util::json::Json;

/// An insertion-ordered multiset of named monotonic counters.
///
/// Lookup is a linear scan — counter sets are small (tens of names) and
/// hot loops should accumulate into locals and [`CounterSet::add`]
/// once per batch.
///
/// ```
/// use rbp_trace::CounterSet;
/// let mut c = CounterSet::new();
/// c.add("io.spill", 2);
/// c.add("io.spill", 3);
/// c.add("io.comm", 1);
/// assert_eq!(c.get("io.spill"), 5);
/// assert_eq!(c.get("missing"), 0);
/// assert_eq!(c.iter().map(|(n, _)| n).collect::<Vec<_>>(), ["io.spill", "io.comm"]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CounterSet {
    items: Vec<(String, u64)>,
}

impl CounterSet {
    /// An empty set.
    #[must_use]
    pub fn new() -> Self {
        CounterSet::default()
    }

    /// Adds `delta` to the counter `name` (creating it at zero first)
    /// and returns the new value.
    pub fn add(&mut self, name: &str, delta: u64) -> u64 {
        if let Some((_, v)) = self.items.iter_mut().find(|(n, _)| n == name) {
            *v += delta;
            *v
        } else {
            self.items.push((name.to_string(), delta));
            delta
        }
    }

    /// Overwrites the counter `name` with `value`.
    pub fn set(&mut self, name: &str, value: u64) {
        if let Some((_, v)) = self.items.iter_mut().find(|(n, _)| n == name) {
            *v = value;
        } else {
            self.items.push((name.to_string(), value));
        }
    }

    /// The current value of `name` (zero when absent).
    #[must_use]
    pub fn get(&self, name: &str) -> u64 {
        self.items
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Iterates `(name, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.items.iter().map(|(n, v)| (n.as_str(), *v))
    }

    /// Number of distinct counter names.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether no counter has been touched.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Merges another set into this one (summing per name).
    pub fn merge(&mut self, other: &CounterSet) {
        for (n, v) in other.iter() {
            self.add(n, v);
        }
    }

    /// Serializes to a JSON object `{name: value, …}` in insertion order.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Obj(
            self.items
                .iter()
                .map(|(n, v)| (n.clone(), Json::from(*v)))
                .collect(),
        )
    }

    /// Emits every counter through the global tracer, each name prefixed
    /// with `prefix` (pass `""` for none).
    pub fn emit(&self, prefix: &str) {
        if !crate::enabled() {
            return;
        }
        for (n, v) in self.iter() {
            if prefix.is_empty() {
                crate::counter(n, v);
            } else {
                crate::counter(&format!("{prefix}{n}"), v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_set_get_merge() {
        let mut a = CounterSet::new();
        assert!(a.is_empty());
        assert_eq!(a.add("x", 2), 2);
        assert_eq!(a.add("x", 1), 3);
        a.set("y", 10);
        a.set("x", 4);
        let mut b = CounterSet::new();
        b.add("x", 1);
        b.add("z", 5);
        a.merge(&b);
        assert_eq!(a.get("x"), 5);
        assert_eq!(a.get("y"), 10);
        assert_eq!(a.get("z"), 5);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn json_preserves_order() {
        let mut c = CounterSet::new();
        c.add("later", 1);
        c.add("alpha", 2);
        assert_eq!(c.to_json().render(), r#"{"later":1,"alpha":2}"#);
    }
}
