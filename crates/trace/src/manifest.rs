//! The run-manifest header: the first line of every trace file.
//!
//! A manifest pins down everything needed to compare two trace files:
//! which tool produced it, at which git revision, with which seed,
//! instance, and solver configuration. Downstream tooling (`rbp
//! report`, regression diffing) refuses traces without one.

use std::hash::Hasher as _;

use rbp_util::json::Json;
use rbp_util::FxHasher;

/// Builder for the manifest line:
/// `{"type":"manifest","schema":1,"tool":…,"git_rev":…, <fields…>}`.
///
/// ```
/// use rbp_trace::Manifest;
/// let m = Manifest::new("exp_solver")
///     .field("seed", 42u64)
///     .field("config", "a*+symmetry");
/// let line = m.to_json().render();
/// assert!(line.starts_with("{\"type\":\"manifest\""));
/// assert!(line.contains("\"seed\":42"));
/// ```
#[derive(Debug, Clone)]
pub struct Manifest {
    tool: String,
    fields: Vec<(String, Json)>,
}

impl Manifest {
    /// A manifest for `tool` (the binary or subcommand name). The git
    /// revision is discovered automatically from the working directory.
    #[must_use]
    pub fn new(tool: &str) -> Self {
        Manifest {
            tool: tool.to_string(),
            fields: Vec::new(),
        }
    }

    /// Attaches an extra key/value pair (seed, instance hash, solver
    /// config, CLI args, …). Insertion order is preserved.
    #[must_use]
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Self {
        self.fields.push((key.to_string(), value.into()));
        self
    }

    /// Serializes the manifest to its JSON object.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut obj = vec![
            ("type".to_string(), Json::from("manifest")),
            ("schema".to_string(), Json::from(crate::SCHEMA_VERSION)),
            ("tool".to_string(), Json::from(self.tool.as_str())),
            (
                "git_rev".to_string(),
                git_rev().map_or(Json::Null, Json::from),
            ),
        ];
        obj.extend(self.fields.iter().cloned());
        Json::Obj(obj)
    }
}

/// The current git commit hash (best effort, no subprocess): walks up
/// from the current directory to the nearest `.git`, reads `HEAD`, and
/// follows one level of `ref:` indirection (including `packed-refs`).
/// `None` outside a git checkout.
#[must_use]
pub fn git_rev() -> Option<String> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let git = dir.join(".git");
        if git.is_dir() {
            return read_head(&git);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn read_head(git: &std::path::Path) -> Option<String> {
    let head = std::fs::read_to_string(git.join("HEAD")).ok()?;
    let head = head.trim();
    if let Some(refname) = head.strip_prefix("ref: ") {
        if let Ok(hash) = std::fs::read_to_string(git.join(refname)) {
            return Some(hash.trim().to_string());
        }
        // Packed refs: lines of "<hash> <refname>".
        let packed = std::fs::read_to_string(git.join("packed-refs")).ok()?;
        for line in packed.lines() {
            if let Some((hash, name)) = line.split_once(' ') {
                if name == refname {
                    return Some(hash.to_string());
                }
            }
        }
        None
    } else {
        Some(head.to_string())
    }
}

/// A short stable hex digest of arbitrary bytes (FxHash-based), used to
/// fingerprint problem instances in manifests: hash the DAG's canonical
/// text form plus the `(k, r, g)` parameters.
///
/// ```
/// let h = rbp_trace::hash_hex(b"chain(4) k=2 r=3 g=1");
/// assert_eq!(h.len(), 16);
/// assert_eq!(h, rbp_trace::hash_hex(b"chain(4) k=2 r=3 g=1"));
/// ```
#[must_use]
pub fn hash_hex(bytes: &[u8]) -> String {
    let mut hasher = FxHasher::default();
    hasher.write(bytes);
    format!("{:016x}", hasher.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_shape_and_field_order() {
        let m = Manifest::new("t").field("b", 1u64).field("a", "x");
        let j = m.to_json();
        assert_eq!(j.get("type").unwrap().as_str(), Some("manifest"));
        assert_eq!(
            j.get("schema").unwrap().as_u64(),
            Some(crate::SCHEMA_VERSION)
        );
        assert_eq!(j.get("tool").unwrap().as_str(), Some("t"));
        let rendered = j.render();
        let b_pos = rendered.find("\"b\":").unwrap();
        let a_pos = rendered.find("\"a\":").unwrap();
        assert!(b_pos < a_pos, "field insertion order preserved");
    }

    #[test]
    fn git_rev_found_in_this_repo() {
        // The test suite runs inside the repository checkout.
        let rev = git_rev().expect("repo has a .git");
        assert!(rev.len() >= 7, "{rev}");
        assert!(rev.chars().all(|c| c.is_ascii_hexdigit()), "{rev}");
    }

    #[test]
    fn hash_hex_is_stable_and_distinguishes() {
        assert_eq!(hash_hex(b"x"), hash_hex(b"x"));
        assert_ne!(hash_hex(b"x"), hash_hex(b"y"));
    }
}
