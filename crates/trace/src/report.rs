//! Rendering trace files back into human-readable reports.
//!
//! [`render`] turns a `TRACE_*.jsonl` file into the markdown comparison
//! tables of EXPERIMENTS.md plus a counter/gauge/span summary — the
//! reading side of the observability layer, used by `rbp report`.

use std::fmt::Write as _;

use rbp_util::json::Json;

/// A parsed trace: the manifest plus every following event, in order.
#[derive(Debug)]
pub struct Trace {
    /// The manifest header object (first line of the file).
    pub manifest: Json,
    /// All subsequent event objects.
    pub events: Vec<Json>,
}

/// Parses JSONL trace text. The first non-empty line must be a valid
/// manifest (`"type":"manifest"` with a `schema` no newer than this
/// crate understands); later malformed lines are errors too, so silent
/// truncation cannot masquerade as a short run.
///
/// # Errors
/// A human-readable description of the first offending line.
pub fn parse(text: &str) -> Result<Trace, String> {
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    let (_, first) = lines.next().ok_or("empty trace file")?;
    let manifest = Json::parse(first).map_err(|e| format!("line 1: not valid JSON ({e})"))?;
    if manifest.get("type").and_then(Json::as_str) != Some("manifest") {
        return Err("line 1: missing manifest header (expected \"type\":\"manifest\")".into());
    }
    let schema = manifest
        .get("schema")
        .and_then(Json::as_u64)
        .ok_or("line 1: manifest has no schema version")?;
    if schema > crate::SCHEMA_VERSION {
        return Err(format!(
            "trace schema {schema} is newer than supported {}",
            crate::SCHEMA_VERSION
        ));
    }
    let mut events = Vec::new();
    for (i, line) in lines {
        let ev = Json::parse(line).map_err(|e| format!("line {}: not valid JSON ({e})", i + 1))?;
        events.push(ev);
    }
    Ok(Trace { manifest, events })
}

/// Renders a full report: manifest summary, every emitted table as
/// EXPERIMENTS.md-style markdown, then counters (summed per name),
/// gauges (last value per name), and a span timing summary.
///
/// # Errors
/// See [`parse`]; additionally, a trace that carries no renderable
/// events (header-only files, or files whose events are all of unknown
/// types) is refused — an empty report would read as a successful run
/// that recorded nothing.
pub fn render(text: &str) -> Result<String, String> {
    let trace = parse(text)?;
    if trace.events.is_empty() {
        return Err(
            "trace has a manifest but no events (was the run interrupted before flushing?)".into(),
        );
    }
    let mut out = String::new();

    let tool = trace
        .manifest
        .get("tool")
        .and_then(Json::as_str)
        .unwrap_or("?");
    let _ = writeln!(out, "# Trace report — {tool}\n");
    if let Json::Obj(pairs) = &trace.manifest {
        for (k, v) in pairs {
            if k == "type" {
                continue;
            }
            let _ = writeln!(out, "- {k}: {}", scalar(v));
        }
    }

    let mut counters: Vec<(String, u64)> = Vec::new();
    let mut gauges: Vec<(String, f64)> = Vec::new();
    let mut spans: Vec<(String, u64, u64)> = Vec::new(); // name, count, total_us
    let mut tables = 0usize;

    for ev in &trace.events {
        let ty = ev.get("type").and_then(Json::as_str).unwrap_or("");
        let name = ev.get("name").and_then(Json::as_str).unwrap_or("?");
        match ty {
            "counter" => {
                let v = ev.get("value").and_then(Json::as_u64).unwrap_or(0);
                match counters.iter_mut().find(|(n, _)| n == name) {
                    Some((_, total)) => *total += v,
                    None => counters.push((name.to_string(), v)),
                }
            }
            "gauge" => {
                let v = ev.get("value").and_then(Json::as_f64).unwrap_or(f64::NAN);
                match gauges.iter_mut().find(|(n, _)| n == name) {
                    Some((_, last)) => *last = v,
                    None => gauges.push((name.to_string(), v)),
                }
            }
            "span_exit" => {
                let us = ev.get("elapsed_us").and_then(Json::as_u64).unwrap_or(0);
                match spans.iter_mut().find(|(n, _, _)| n == name) {
                    Some((_, c, total)) => {
                        *c += 1;
                        *total += us;
                    }
                    None => spans.push((name.to_string(), 1, us)),
                }
            }
            "table" => {
                tables += 1;
                let _ = writeln!(out, "\n## {name}\n");
                out.push_str(&markdown_table(ev));
            }
            _ => {}
        }
    }

    // The persistent-store tier of rbp-serve reports under
    // `serve.store.*`; gather those into one operational section
    // (counters summed, gauges last-value) instead of scattering them
    // through the generic tables.
    let store_counters: Vec<(String, u64)> = counters
        .iter()
        .filter(|(n, _)| n.starts_with("serve.store."))
        .cloned()
        .collect();
    let store_gauges: Vec<(String, f64)> = gauges
        .iter()
        .filter(|(n, _)| n.starts_with("serve.store."))
        .cloned()
        .collect();
    let store_rows = store_counters.len() + store_gauges.len();
    if store_rows > 0 {
        counters.retain(|(n, _)| !n.starts_with("serve.store."));
        gauges.retain(|(n, _)| !n.starts_with("serve.store."));
        let _ = writeln!(out, "\n## Serve store\n");
        let _ = writeln!(out, "| metric | value |");
        let _ = writeln!(out, "|---|---|");
        for (n, v) in &store_counters {
            let _ = writeln!(out, "| {n} | {v} |");
        }
        for (n, v) in &store_gauges {
            let _ = writeln!(out, "| {n} | {v} |");
        }
    }

    // The streaming scheduler tier (rbp-stream) reports under
    // `stream.*`; gather those into one "Scale" section so a report
    // over a large-DAG run leads with throughput (nodes/sec), peak
    // active-set, pass counts, and emitted strategy bytes.
    let scale_counters: Vec<(String, u64)> = counters
        .iter()
        .filter(|(n, _)| n.starts_with("stream."))
        .cloned()
        .collect();
    let scale_gauges: Vec<(String, f64)> = gauges
        .iter()
        .filter(|(n, _)| n.starts_with("stream."))
        .cloned()
        .collect();
    let scale_rows = scale_counters.len() + scale_gauges.len();
    if scale_rows > 0 {
        counters.retain(|(n, _)| !n.starts_with("stream."));
        gauges.retain(|(n, _)| !n.starts_with("stream."));
        let _ = writeln!(out, "\n## Scale\n");
        let _ = writeln!(out, "| metric | value |");
        let _ = writeln!(out, "|---|---|");
        for (n, v) in &scale_counters {
            let _ = writeln!(out, "| {n} | {v} |");
        }
        for (n, v) in &scale_gauges {
            let _ = writeln!(out, "| {n} | {v} |");
        }
    }

    // The three-level game (rbp-hier) reports under `hier.*` (exact
    // solver) and `bounds.hier.*` (closed-form bounds); gather those
    // into one "Hierarchy" section so green-tier traffic and the
    // green/blue split read as a unit.
    let is_hier = |n: &str| n.starts_with("hier.") || n.starts_with("bounds.hier.");
    let hier_counters: Vec<(String, u64)> = counters
        .iter()
        .filter(|(n, _)| is_hier(n))
        .cloned()
        .collect();
    let hier_gauges: Vec<(String, f64)> =
        gauges.iter().filter(|(n, _)| is_hier(n)).cloned().collect();
    let hier_rows = hier_counters.len() + hier_gauges.len();
    if hier_rows > 0 {
        counters.retain(|(n, _)| !is_hier(n));
        gauges.retain(|(n, _)| !is_hier(n));
        let _ = writeln!(out, "\n## Hierarchy\n");
        let _ = writeln!(out, "| metric | value |");
        let _ = writeln!(out, "|---|---|");
        for (n, v) in &hier_counters {
            let _ = writeln!(out, "| {n} | {v} |");
        }
        for (n, v) in &hier_gauges {
            let _ = writeln!(out, "| {n} | {v} |");
        }
    }

    // The sequential hot path of the shared A* engine reports per-phase
    // counters (and, under `RBP_PHASE_PROF=1`, nanosecond timings) under
    // `solver.phase.*`; gather those into one "Hot path" section so
    // canonicalization, heuristic, successor-generation, hash-intern and
    // queue costs read as a unit.
    let hot_counters: Vec<(String, u64)> = counters
        .iter()
        .filter(|(n, _)| n.starts_with("solver.phase."))
        .cloned()
        .collect();
    let hot_gauges: Vec<(String, f64)> = gauges
        .iter()
        .filter(|(n, _)| n.starts_with("solver.phase."))
        .cloned()
        .collect();
    let hot_rows = hot_counters.len() + hot_gauges.len();
    if hot_rows > 0 {
        counters.retain(|(n, _)| !n.starts_with("solver.phase."));
        gauges.retain(|(n, _)| !n.starts_with("solver.phase."));
        let _ = writeln!(out, "\n## Hot path\n");
        let _ = writeln!(out, "| metric | value |");
        let _ = writeln!(out, "|---|---|");
        for (n, v) in &hot_counters {
            let _ = writeln!(out, "| {n} | {v} |");
        }
        for (n, v) in &hot_gauges {
            let _ = writeln!(out, "| {n} | {v} |");
        }
    }

    if !counters.is_empty() {
        let _ = writeln!(out, "\n## Counters\n");
        let _ = writeln!(out, "| counter | total |");
        let _ = writeln!(out, "|---|---|");
        for (n, v) in &counters {
            let _ = writeln!(out, "| {n} | {v} |");
        }
    }
    if !gauges.is_empty() {
        let _ = writeln!(out, "\n## Gauges (last value)\n");
        let _ = writeln!(out, "| gauge | value |");
        let _ = writeln!(out, "|---|---|");
        for (n, v) in &gauges {
            let _ = writeln!(out, "| {n} | {v} |");
        }
    }
    // Benchmarks that cannot measure what they claim flag themselves
    // with a `*sweep_valid` gauge of 0; surface that loudly so a report
    // reader cannot mistake a single-core run for a scaling result.
    let invalid_sweeps: Vec<&str> = gauges
        .iter()
        .filter(|(n, v)| n.ends_with("sweep_valid") && *v == 0.0)
        .map(|(n, _)| n.as_str())
        .collect();
    if !invalid_sweeps.is_empty() {
        let _ = writeln!(out, "\n## Warnings\n");
        for n in invalid_sweeps {
            let _ = writeln!(
                out,
                "- **{n} = 0**: the run reported itself unable to measure thread \
                 scaling (single hardware thread); treat its wall-clock sweep \
                 numbers as scheduling overhead, not speedup."
            );
        }
    }
    if !spans.is_empty() {
        let _ = writeln!(out, "\n## Spans\n");
        let _ = writeln!(out, "| span | count | total ms |");
        let _ = writeln!(out, "|---|---|---|");
        for (n, c, us) in &spans {
            let _ = writeln!(out, "| {n} | {c} | {:.2} |", *us as f64 / 1e3);
        }
    }
    if tables == 0
        && counters.is_empty()
        && gauges.is_empty()
        && spans.is_empty()
        && store_rows == 0
        && scale_rows == 0
        && hier_rows == 0
        && hot_rows == 0
    {
        return Err(format!(
            "trace has {} event(s) but none are renderable (no tables, counters, gauges, or spans)",
            trace.events.len()
        ));
    }
    Ok(out)
}

/// One table event as an EXPERIMENTS.md-style markdown table.
fn markdown_table(ev: &Json) -> String {
    let headers: Vec<&str> = ev
        .get("headers")
        .and_then(Json::as_arr)
        .map(|hs| hs.iter().filter_map(Json::as_str).collect())
        .unwrap_or_default();
    let mut out = String::new();
    let _ = writeln!(out, "| {} |", headers.join(" | "));
    let _ = writeln!(
        out,
        "|{}",
        headers.iter().map(|_| "---|").collect::<String>()
    );
    if let Some(rows) = ev.get("rows").and_then(Json::as_arr) {
        for row in rows {
            let cells: Vec<&str> = row
                .as_arr()
                .map(|cs| cs.iter().filter_map(Json::as_str).collect())
                .unwrap_or_default();
            let _ = writeln!(out, "| {} |", cells.join(" | "));
        }
    }
    out
}

fn scalar(v: &Json) -> String {
    match v {
        Json::Str(s) => s.clone(),
        other => other.render(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TRACE: &str = concat!(
        "{\"type\":\"manifest\",\"schema\":1,\"tool\":\"exp_demo\",\"git_rev\":\"abc\",\"seed\":7}\n",
        "{\"type\":\"span_enter\",\"ts_us\":1,\"id\":1,\"name\":\"solve\"}\n",
        "{\"type\":\"counter\",\"ts_us\":2,\"name\":\"solver.settled\",\"value\":10}\n",
        "{\"type\":\"counter\",\"ts_us\":3,\"name\":\"solver.settled\",\"value\":5}\n",
        "{\"type\":\"gauge\",\"ts_us\":4,\"name\":\"tightness\",\"value\":0.5}\n",
        "{\"type\":\"gauge\",\"ts_us\":5,\"name\":\"tightness\",\"value\":0.9}\n",
        "{\"type\":\"span_exit\",\"ts_us\":6,\"id\":1,\"name\":\"solve\",\"elapsed_us\":5000}\n",
        "{\"type\":\"table\",\"ts_us\":7,\"name\":\"E-DEMO\",\"headers\":[\"d\",\"speedup\"],",
        "\"rows\":[[\"4\",\"1.69\"],[\"8\",\"3.02\"]]}\n",
    );

    #[test]
    fn parse_requires_manifest_first() {
        assert!(parse(TRACE).is_ok());
        assert!(parse("").is_err());
        assert!(parse("{\"type\":\"counter\"}").is_err());
        assert!(parse("not json").is_err());
        let newer = TRACE.replace("\"schema\":1", "\"schema\":999");
        assert!(parse(&newer).unwrap_err().contains("newer"));
        let broken = format!("{TRACE}garbage\n");
        assert!(parse(&broken).is_err());
    }

    #[test]
    fn render_reproduces_markdown_table() {
        let report = render(TRACE).unwrap();
        assert!(report.contains("# Trace report — exp_demo"));
        assert!(report.contains("- seed: 7"));
        assert!(report.contains("## E-DEMO"));
        assert!(report.contains("| d | speedup |"));
        assert!(report.contains("| 4 | 1.69 |"));
        assert!(report.contains("| 8 | 3.02 |"));
        // Counters sum; gauges keep the last value; spans aggregate.
        assert!(report.contains("| solver.settled | 15 |"));
        assert!(report.contains("| tightness | 0.9 |"));
        assert!(report.contains("| solve | 1 | 5.00 |"));
    }

    #[test]
    fn invalid_sweep_gauge_renders_warning() {
        let head =
            "{\"type\":\"manifest\",\"schema\":1,\"tool\":\"exp_solver\",\"git_rev\":null}\n";
        let invalid = format!(
            "{head}{{\"type\":\"gauge\",\"ts_us\":1,\"name\":\"exp_solver.sweep_valid\",\"value\":0}}\n"
        );
        let report = render(&invalid).unwrap();
        assert!(report.contains("## Warnings"), "{report}");
        assert!(report.contains("exp_solver.sweep_valid = 0"), "{report}");

        let valid = format!(
            "{head}{{\"type\":\"gauge\",\"ts_us\":1,\"name\":\"exp_solver.sweep_valid\",\"value\":1}}\n"
        );
        let report = render(&valid).unwrap();
        assert!(!report.contains("## Warnings"), "{report}");
    }

    /// `stream.*` metrics from the streaming scheduler tier get their
    /// own "Scale" section and disappear from the generic tables.
    #[test]
    fn stream_metrics_render_in_scale_section() {
        let trace = concat!(
            "{\"type\":\"manifest\",\"schema\":1,\"tool\":\"exp_scale\",\"git_rev\":null}\n",
            "{\"type\":\"counter\",\"ts_us\":1,\"name\":\"stream.nodes\",\"value\":1000000}\n",
            "{\"type\":\"counter\",\"ts_us\":2,\"name\":\"stream.passes\",\"value\":4}\n",
            "{\"type\":\"counter\",\"ts_us\":3,\"name\":\"stream.emitted_bytes\",\"value\":252078542}\n",
            "{\"type\":\"counter\",\"ts_us\":4,\"name\":\"stream.moves\",\"value\":3500000}\n",
            "{\"type\":\"gauge\",\"ts_us\":5,\"name\":\"stream.nodes_per_sec\",\"value\":5476015.0}\n",
            "{\"type\":\"gauge\",\"ts_us\":6,\"name\":\"stream.peak_active_set\",\"value\":24}\n",
            "{\"type\":\"counter\",\"ts_us\":7,\"name\":\"other.counter\",\"value\":1}\n",
        );
        let report = render(trace).unwrap();
        assert!(report.contains("## Scale"), "{report}");
        assert!(report.contains("| stream.nodes | 1000000 |"), "{report}");
        assert!(report.contains("| stream.passes | 4 |"), "{report}");
        assert!(
            report.contains("| stream.emitted_bytes | 252078542 |"),
            "{report}"
        );
        assert!(
            report.contains("| stream.nodes_per_sec | 5476015 |"),
            "{report}"
        );
        assert!(
            report.contains("| stream.peak_active_set | 24 |"),
            "{report}"
        );
        // stream.* rows live only in the Scale section; unrelated
        // metrics stay in the generic tables.
        let scale_at = report.find("## Scale").unwrap();
        let counters_at = report.find("## Counters").unwrap();
        assert!(scale_at < counters_at, "{report}");
        assert!(
            report[counters_at..].contains("| other.counter | 1 |"),
            "{report}"
        );
        assert!(!report[counters_at..].contains("stream."), "{report}");
    }

    /// `hier.*` and `bounds.hier.*` metrics from the three-level game
    /// get their own "Hierarchy" section and disappear from the generic
    /// tables.
    #[test]
    fn hier_metrics_render_in_hierarchy_section() {
        let trace = concat!(
            "{\"type\":\"manifest\",\"schema\":1,\"tool\":\"rbp\",\"git_rev\":null}\n",
            "{\"type\":\"counter\",\"ts_us\":1,\"name\":\"hier.runs\",\"value\":1}\n",
            "{\"type\":\"counter\",\"ts_us\":2,\"name\":\"hier.green_stores\",\"value\":2}\n",
            "{\"type\":\"counter\",\"ts_us\":3,\"name\":\"hier.green_loads\",\"value\":2}\n",
            "{\"type\":\"counter\",\"ts_us\":4,\"name\":\"hier.blue_stores\",\"value\":0}\n",
            "{\"type\":\"gauge\",\"ts_us\":5,\"name\":\"hier.green_cap\",\"value\":2}\n",
            "{\"type\":\"gauge\",\"ts_us\":6,\"name\":\"hier.total\",\"value\":13}\n",
            "{\"type\":\"gauge\",\"ts_us\":7,\"name\":\"bounds.hier.upper\",\"value\":90}\n",
            "{\"type\":\"counter\",\"ts_us\":8,\"name\":\"other.counter\",\"value\":1}\n",
        );
        let report = render(trace).unwrap();
        assert!(report.contains("## Hierarchy"), "{report}");
        assert!(report.contains("| hier.runs | 1 |"), "{report}");
        assert!(report.contains("| hier.green_stores | 2 |"), "{report}");
        assert!(report.contains("| hier.green_cap | 2 |"), "{report}");
        assert!(report.contains("| bounds.hier.upper | 90 |"), "{report}");
        // hier rows live only in the Hierarchy section; unrelated
        // metrics stay in the generic tables.
        let hier_at = report.find("## Hierarchy").unwrap();
        let counters_at = report.find("## Counters").unwrap();
        assert!(hier_at < counters_at, "{report}");
        assert!(
            report[counters_at..].contains("| other.counter | 1 |"),
            "{report}"
        );
        assert!(!report[counters_at..].contains("hier."), "{report}");
    }

    /// `solver.phase.*` metrics from the shared A* engine's hot path
    /// get their own "Hot path" section and disappear from the generic
    /// tables.
    #[test]
    fn phase_metrics_render_in_hot_path_section() {
        let trace = concat!(
            "{\"type\":\"manifest\",\"schema\":1,\"tool\":\"rbp\",\"git_rev\":null}\n",
            "{\"type\":\"counter\",\"ts_us\":1,\"name\":\"solver.phase.mpp.canon_memo_hits\",\"value\":900}\n",
            "{\"type\":\"counter\",\"ts_us\":2,\"name\":\"solver.phase.mpp.canon_sorts\",\"value\":100}\n",
            "{\"type\":\"counter\",\"ts_us\":3,\"name\":\"solver.phase.mpp.heur_delta_fast\",\"value\":800}\n",
            "{\"type\":\"counter\",\"ts_us\":4,\"name\":\"solver.phase.mpp.idle_suppressed\",\"value\":250}\n",
            "{\"type\":\"gauge\",\"ts_us\":5,\"name\":\"solver.phase.mpp.heuristic_ns\",\"value\":12345}\n",
            "{\"type\":\"counter\",\"ts_us\":6,\"name\":\"other.counter\",\"value\":1}\n",
        );
        let report = render(trace).unwrap();
        assert!(report.contains("## Hot path"), "{report}");
        assert!(
            report.contains("| solver.phase.mpp.canon_memo_hits | 900 |"),
            "{report}"
        );
        assert!(
            report.contains("| solver.phase.mpp.idle_suppressed | 250 |"),
            "{report}"
        );
        assert!(
            report.contains("| solver.phase.mpp.heuristic_ns | 12345 |"),
            "{report}"
        );
        // Phase rows live only in the Hot path section; unrelated
        // metrics stay in the generic tables.
        let hot_at = report.find("## Hot path").unwrap();
        let counters_at = report.find("## Counters").unwrap();
        assert!(hot_at < counters_at, "{report}");
        assert!(
            report[counters_at..].contains("| other.counter | 1 |"),
            "{report}"
        );
        assert!(!report[counters_at..].contains("solver.phase."), "{report}");
    }

    #[test]
    fn render_refuses_event_free_trace() {
        let text = "{\"type\":\"manifest\",\"schema\":1,\"tool\":\"t\",\"git_rev\":null}\n";
        let err = render(text).unwrap_err();
        assert!(err.contains("no events"), "{err}");
        // Events that exist but render to nothing are refused too.
        let only_unknown = format!("{text}{{\"type\":\"mystery\",\"ts_us\":1}}\n");
        let err = render(&only_unknown).unwrap_err();
        assert!(err.contains("none are renderable"), "{err}");
    }
}
