//! Trace sinks: where emitted JSONL lines go.

use std::io::Write as _;
use std::sync::{Arc, Mutex};

/// A destination for trace lines. Each `line` is one complete JSON
/// object **without** a trailing newline; sinks add their own framing.
///
/// Implementations must be `Send`: experiment sweeps emit from scoped
/// worker threads through the global tracer's mutex.
pub trait Sink: Send {
    /// Records one JSONL line.
    fn record(&mut self, line: &str);

    /// Flushes buffered output (called on uninstall and [`crate::flush`]).
    fn flush(&mut self) {}
}

/// A sink streaming lines to a buffered file — the standard destination
/// for `TRACE_<tool>.jsonl` artifacts.
#[derive(Debug)]
pub struct JsonlSink {
    writer: std::io::BufWriter<std::fs::File>,
}

impl JsonlSink {
    /// Creates (truncates) `path` and returns a sink writing to it.
    ///
    /// # Errors
    /// Propagates the underlying file-creation error.
    pub fn create(path: &std::path::Path) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(JsonlSink {
            writer: std::io::BufWriter::new(file),
        })
    }
}

impl Sink for JsonlSink {
    fn record(&mut self, line: &str) {
        // Trace output is best-effort: losing a line must never abort
        // the experiment producing it.
        let _ = writeln!(self.writer, "{line}");
    }

    fn flush(&mut self) {
        let _ = self.writer.flush();
    }
}

/// An in-memory sink for tests: captured lines are shared through the
/// handle returned by [`MemorySink::new`].
#[derive(Debug)]
pub struct MemorySink {
    lines: Arc<Mutex<Vec<String>>>,
}

impl MemorySink {
    /// A new sink plus the shared handle to its captured lines.
    #[must_use]
    pub fn new() -> (Self, Arc<Mutex<Vec<String>>>) {
        let lines = Arc::new(Mutex::new(Vec::new()));
        (
            MemorySink {
                lines: Arc::clone(&lines),
            },
            lines,
        )
    }
}

impl Sink for MemorySink {
    fn record(&mut self, line: &str) {
        self.lines.lock().unwrap().push(line.to_string());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_sink_writes_lines() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("rbp_trace_sink_test_{}.jsonl", std::process::id()));
        {
            let mut sink = JsonlSink::create(&path).unwrap();
            sink.record("{\"a\":1}");
            sink.record("{\"b\":2}");
            sink.flush();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "{\"a\":1}\n{\"b\":2}\n");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn memory_sink_captures() {
        let (mut sink, lines) = MemorySink::new();
        sink.record("x");
        assert_eq!(*lines.lock().unwrap(), vec!["x".to_string()]);
    }
}
