//! Lemma 5 / Corollary 1: translating SPP I/O lower bounds to MPP.

use rbp_core::{MppInstance, SolveLimits, SppInstance};

/// Lemma 5: if every SPP pebbling with fast memory `k·r` needs at least
/// `spp_io_lb` I/O moves, then every MPP pebbling with `k` processors of
/// memory `r` needs at least `ceil(spp_io_lb / k)` I/O *steps*.
#[must_use]
pub fn mpp_io_steps_lower(spp_io_lb: u64, k: usize) -> u64 {
    spp_io_lb.div_ceil(k as u64)
}

/// Corollary 1: the total-cost lower bound `g·L/k + n/k`.
#[must_use]
pub fn mpp_total_lower(instance: &MppInstance, spp_io_lb: u64) -> u64 {
    let k = instance.k as u64;
    crate::traced(
        "translate.mpp_total_lower",
        instance.model.g * spp_io_lb.div_ceil(k)
            + (instance.dag.n() as u64).div_ceil(k) * instance.model.compute,
    )
}

/// Computes the *exact* SPP minimum I/O at memory `k·r` (small DAGs
/// only) and returns the Corollary 1 bound; `None` when the exact solve
/// is out of range.
#[must_use]
pub fn mpp_total_lower_exact(instance: &MppInstance, limits: SolveLimits) -> Option<u64> {
    let spp = SppInstance::io_only(instance.dag, instance.k * instance.r, 1);
    let sol = rbp_core::solve_spp(&spp, limits)?;
    Some(mpp_total_lower(instance, sol.cost.io_steps()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbp_core::rbp_dag::generators;
    use rbp_core::solve_mpp;

    #[test]
    fn lemma5_arithmetic() {
        assert_eq!(mpp_io_steps_lower(10, 2), 5);
        assert_eq!(mpp_io_steps_lower(11, 2), 6);
        assert_eq!(mpp_io_steps_lower(0, 4), 0);
    }

    #[test]
    fn corollary1_is_a_valid_lower_bound_on_small_instances() {
        // Exact MPP optimum must respect the translated bound.
        for (dag, k, r, g) in [
            (generators::binary_in_tree(4), 2, 3, 2),
            (generators::diamond(3), 2, 4, 3),
            (generators::chain(6), 2, 2, 2),
        ] {
            let inst = MppInstance::new(&dag, k, r, g);
            let bound =
                mpp_total_lower_exact(&inst, SolveLimits::default()).expect("exact SPP in range");
            let opt = solve_mpp(&inst, SolveLimits::default()).expect("exact MPP");
            assert!(
                bound <= opt.total,
                "{}: bound {bound} > OPT {}",
                dag.name(),
                opt.total
            );
        }
    }

    #[test]
    fn translation_uses_kr_memory() {
        // With k·r ≥ n the SPP solver needs no I/O, so the bound reduces
        // to the Lemma 1 compute term.
        let dag = generators::chain(4);
        let inst = MppInstance::new(&dag, 2, 4, 5);
        assert_eq!(
            mpp_total_lower_exact(&inst, SolveLimits::default()),
            Some(2)
        );
    }
}
