//! Hong–Kung I/O lower bound for the FFT DAG and its MPP translation.

/// Hong–Kung: pebbling the `n`-point FFT DAG in SPP with fast memory
/// `s ≥ 2` requires `Ω(n·log n / log s)` I/O moves. This returns the
/// bound's leading term `n·log2(n) / log2(s)` (floored), the form the
/// paper quotes in §4.
#[must_use]
pub fn spp_io_lower(n_points: u64, s: u64) -> u64 {
    if n_points < 2 || s < 2 {
        return 0;
    }
    let n = n_points as f64;
    let bound = n * n.log2() / (s as f64).log2();
    bound.floor() as u64
}

/// The §4 MPP cost lower bound for the FFT:
/// `(n/k) · (g·log n / log(rk) + 1)`.
#[must_use]
pub fn mpp_total_lower(n_points: u64, k: u64, r: u64, g: u64) -> u64 {
    if n_points < 2 {
        return n_points.div_ceil(k.max(1));
    }
    let n = n_points as f64;
    let rk = (r * k).max(2) as f64;
    let bound = (n / k as f64) * (g as f64 * n.log2() / rk.log2() + 1.0);
    crate::traced("fft.mpp_total_lower", bound.floor() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spp_bound_shapes() {
        // log-form: n log n / log s.
        assert_eq!(spp_io_lower(16, 2), 64);
        assert_eq!(spp_io_lower(16, 4), 32);
        assert_eq!(spp_io_lower(16, 16), 16);
        assert_eq!(spp_io_lower(1, 4), 0);
        assert_eq!(spp_io_lower(16, 1), 0);
    }

    #[test]
    fn bigger_memory_weakens_the_bound() {
        let mut prev = u64::MAX;
        for s in [2u64, 4, 8, 16, 32] {
            let b = spp_io_lower(1024, s);
            assert!(b <= prev);
            prev = b;
        }
    }

    #[test]
    fn mpp_bound_decreases_in_k() {
        let mut prev = u64::MAX;
        for k in [1u64, 2, 4, 8] {
            let b = mpp_total_lower(256, k, 4, 3);
            assert!(b < prev, "k={k}");
            prev = b;
        }
    }

    #[test]
    fn mpp_bound_grows_with_g() {
        assert!(mpp_total_lower(256, 2, 4, 8) > mpp_total_lower(256, 2, 4, 1));
    }

    #[test]
    fn trivial_cases() {
        assert_eq!(mpp_total_lower(1, 2, 4, 3), 1);
    }
}
