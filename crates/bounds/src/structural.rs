//! Generic structural lower bounds derived from the DAG shape alone.

use rbp_core::rbp_dag::{min_peak_memory, Dag};
use rbp_core::MppInstance;

/// I/O lower bound from outputs: every sink must end with a pebble, and
/// sinks beyond the total fast memory `k·r` must be stored — each store
/// is one pebble moved, and one I/O step moves at most `k` pebbles.
#[must_use]
pub fn sink_overflow_io_steps(instance: &MppInstance) -> u64 {
    let sinks = instance.dag.sinks().len() as u64;
    let cap = (instance.k * instance.r) as u64;
    sinks.saturating_sub(cap).div_ceil(instance.k as u64)
}

/// Whether the DAG admits a zero-I/O *one-shot* schedule on a single
/// processor with memory `s` — the exact peak-memory DP re-exported as
/// a bound helper: if `min_peak > s`, any one-shot SPP pebbling with
/// memory `s` performs at least one I/O (and allowing recomputation can
/// only trade I/O for computes).
#[must_use]
pub fn zero_io_needs_memory(dag: &Dag, max_n: usize) -> Option<usize> {
    min_peak_memory(dag, max_n)
}

/// A combined total-cost lower bound: the best of Lemma 1 and the sink
/// overflow term.
#[must_use]
pub fn combined_lower(instance: &MppInstance) -> u64 {
    let l1 = crate::trivial::lower(instance);
    let io = sink_overflow_io_steps(instance) * instance.model.g;
    crate::traced("structural.combined_lower", l1 + io)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbp_core::rbp_dag::generators;
    use rbp_core::{solve_mpp, SolveLimits};

    #[test]
    fn sink_overflow_counts() {
        // 8 independent sinks, k=2, r=2 → 4 pebbles fit, 4 spill,
        // batched 2 per step → 2 steps.
        let dag = generators::two_layer_full(1, 8);
        let inst = MppInstance::new(&dag, 2, 2, 3);
        assert_eq!(sink_overflow_io_steps(&inst), 2);
        // Roomy memory → 0.
        let inst2 = MppInstance::new(&dag, 2, 8, 3);
        assert_eq!(sink_overflow_io_steps(&inst2), 0);
    }

    #[test]
    fn combined_lower_respected_by_exact() {
        let dag = generators::two_layer_full(1, 5);
        let inst = MppInstance::new(&dag, 2, 2, 2);
        let opt = solve_mpp(&inst, SolveLimits::default()).unwrap();
        assert!(combined_lower(&inst) <= opt.total);
    }

    #[test]
    fn zero_io_memory_matches_dp() {
        let dag = generators::binary_in_tree(4);
        assert_eq!(
            zero_io_needs_memory(&dag, 32),
            rbp_core::rbp_dag::min_peak_memory(&dag, 32)
        );
    }
}
