//! Kwasniewski et al. I/O lower bound for classical `n×n` matrix
//! multiplication and its MPP translation (§4).

/// The single-processor bound: pebbling the classical matmul DAG with
/// fast memory `s` requires at least `2n³/√s + n²` I/O moves.
#[must_use]
pub fn spp_io_lower(n: u64, s: u64) -> u64 {
    if n == 0 || s == 0 {
        return 0;
    }
    let nf = n as f64;
    (2.0 * nf.powi(3) / (s as f64).sqrt() + nf * nf).floor() as u64
}

/// The §4 MPP total-cost lower bound:
/// `(n/k) · (g·(2n²/√(rk) + n) + 1)`.
///
/// (The `n` in the leading fraction is the *matrix dimension* as in the
/// paper's formula; the DAG itself has `Θ(n³)` nodes.)
#[must_use]
pub fn mpp_total_lower(n: u64, k: u64, r: u64, g: u64) -> u64 {
    if n == 0 {
        return 0;
    }
    let nf = n as f64;
    let rk = ((r * k) as f64).max(1.0);
    let bound = (nf / k as f64) * (g as f64 * (2.0 * nf * nf / rk.sqrt() + nf) + 1.0);
    crate::traced("matmul.mpp_total_lower", bound.floor() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spp_bound_values() {
        // 2·64/2 + 16 = 80 for n=4, s=4.
        assert_eq!(spp_io_lower(4, 4), 80);
        assert_eq!(spp_io_lower(0, 4), 0);
    }

    #[test]
    fn bound_decreases_with_memory() {
        let mut prev = u64::MAX;
        for s in [1u64, 4, 16, 64, 256] {
            let b = spp_io_lower(8, s);
            assert!(b < prev);
            prev = b;
        }
    }

    #[test]
    fn mpp_bound_decreases_in_k() {
        let mut prev = u64::MAX;
        for k in [1u64, 2, 4] {
            let b = mpp_total_lower(8, k, 4, 2);
            assert!(b < prev, "k={k}");
            prev = b;
        }
    }

    #[test]
    fn mpp_bound_scales_with_g() {
        assert!(mpp_total_lower(8, 2, 4, 10) > mpp_total_lower(8, 2, 4, 1));
    }
}
