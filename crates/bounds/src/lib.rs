//! # rbp-bounds — lower bounds on pebbling costs
//!
//! The bound machinery of §4 of the paper:
//!
//! - [`trivial`] — Lemma 1 (`n/k ≤ OPT ≤ (g(Δ_in+1)+1)·n`), feasibility,
//!   and the Lemma 3 greedy guarantee;
//! - [`translate`] — Lemma 5 / Corollary 1: lifting SPP I/O lower bounds
//!   at memory `k·r` to MPP bounds at `k` processors of memory `r`;
//! - [`fft`] — the Hong–Kung `n log n / log s` bound for the FFT DAG and
//!   its MPP form `(n/k)(g·log n/log(rk) + 1)`;
//! - [`matmul`] — the Kwasniewski et al. `2n³/√s + n²` bound for matrix
//!   multiplication and its MPP form;
//! - [`structural`] — shape-only bounds (sink overflow, zero-I/O memory
//!   thresholds);
//! - [`heuristic`] — state-dependent lower bounds via the exact solvers'
//!   admissible A* heuristic (the Lemma 1 bound generalized to mid-game
//!   configurations);
//! - [`hier`] — Lemma 1 generalized to the three-level game of
//!   `rbp-hier` (blue-only and green-resident upper bounds).
//!
//! All closed-form bounds are cross-checked against the exact solvers on
//! small instances in this crate's tests.

#![warn(missing_docs)]

pub mod fft;
pub mod heuristic;
pub mod hier;
pub mod matmul;
pub mod structural;
pub mod translate;
pub mod trivial;

/// Records a computed bound as a trace gauge under `bounds.<name>`
/// (last value wins in reports) and returns it, so call sites can wrap
/// their result expression without restructuring. No-op when tracing is
/// disabled.
pub(crate) fn traced(name: &str, value: u64) -> u64 {
    if rbp_trace::enabled() {
        rbp_trace::gauge(&format!("bounds.{name}"), value as f64);
    }
    value
}
