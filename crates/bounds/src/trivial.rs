//! Lemma 1: the straightforward bounds `n/k ≤ OPT ≤ (g(Δ_in+1)+1)·n`.

use rbp_core::rbp_dag::Dag;
use rbp_core::MppInstance;

/// The Lemma 1 lower bound: `OPT ≥ ceil(n/k)` (each compute step
/// finishes at most `k` nodes, and every node must be computed at least
/// once).
#[must_use]
pub fn lower(instance: &MppInstance) -> u64 {
    crate::traced(
        "trivial.lower",
        (instance.dag.n() as u64).div_ceil(instance.k as u64) * instance.model.compute,
    )
}

/// The Lemma 1 upper bound: `OPT ≤ (g(Δ_in+1)+1)·n`, achieved by the
/// per-node load/compute/store baseline.
#[must_use]
pub fn upper(instance: &MppInstance) -> u64 {
    let d_in = instance.dag.max_in_degree() as u64;
    crate::traced(
        "trivial.upper",
        (instance.model.g * (d_in + 1) + instance.model.compute) * instance.dag.n() as u64,
    )
}

/// Whether a valid pebbling exists at all: `r ≥ Δ_in + 1` (§4).
#[must_use]
pub fn feasible(dag: &Dag, r: usize) -> bool {
    r > dag.max_in_degree()
}

/// The Lemma 3 greedy guarantee: any non-idle greedy schedule is within
/// `2(g(Δ_in+1)+1)` of the optimum.
#[must_use]
pub fn greedy_factor(instance: &MppInstance) -> u64 {
    let d_in = instance.dag.max_in_degree() as u64;
    crate::traced(
        "trivial.greedy_factor",
        2 * (instance.model.g * (d_in + 1) + instance.model.compute),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbp_core::rbp_dag::generators;
    use rbp_core::{solve_mpp, SolveLimits};

    #[test]
    fn bounds_bracket_the_exact_optimum() {
        for (dag, k, r, g) in [
            (generators::chain(6), 1, 2, 2),
            (generators::chain(6), 2, 2, 2),
            (generators::binary_in_tree(4), 2, 3, 3),
            (generators::diamond(3), 1, 4, 1),
            (generators::independent_chains(2, 3), 2, 2, 4),
        ] {
            let inst = MppInstance::new(&dag, k, r, g);
            let opt = solve_mpp(&inst, SolveLimits::default())
                .unwrap_or_else(|| panic!("exact failed on {}", dag.name()));
            assert!(lower(&inst) <= opt.total, "{}", dag.name());
            assert!(opt.total <= upper(&inst), "{}", dag.name());
        }
    }

    #[test]
    fn lower_bound_rounds_up() {
        let dag = generators::chain(5);
        let inst = MppInstance::new(&dag, 2, 2, 1);
        assert_eq!(lower(&inst), 3);
    }

    #[test]
    fn feasibility_threshold() {
        let dag = generators::diamond(4);
        assert!(!feasible(&dag, 4));
        assert!(feasible(&dag, 5));
    }

    #[test]
    fn greedy_factor_formula() {
        let dag = generators::binary_in_tree(4); // Δin = 2
        let inst = MppInstance::new(&dag, 2, 3, 5);
        assert_eq!(greedy_factor(&inst), 2 * (5 * 3 + 1));
    }
}
