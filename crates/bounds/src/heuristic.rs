//! State-dependent lower bounds: the A\* heuristic as a bound machine.
//!
//! [`rbp_core::AdmissibleHeuristic`] gives, for *any* mid-game
//! configuration, a lower bound on the remaining cost — a strict
//! generalization of the Lemma 1 whole-instance bound, which is the
//! special case of the empty starting configuration. This module exposes
//! that view and cross-checks it against both [`crate::trivial`] and the
//! exact solvers.
//!
//! Why this is a valid lower bound (admissibility, proved in detail in
//! `rbp-core::search`):
//!
//! - every still-needed node (upward closure of unpebbled sinks through
//!   unpebbled nodes) must be computed at least once, and a compute step
//!   finishes at most `k` of them that are *minimal* in the needed set —
//!   hence `ceil(|needed|/k)` compute steps;
//! - values that are blue but not red and can never be recomputed
//!   (Hong–Kung inputs, spent one-shot nodes) must be loaded, `≤ k` per
//!   load step;
//! - in sink-to-blue variants, unsaved sinks must be stored, `≤ k` per
//!   store step. The three step classes are disjoint, so the terms add.

use rbp_core::{AdmissibleHeuristic, MppInstance, SppInstance};

/// Lower bound on the total cost of `instance` obtained by evaluating
/// the A\* heuristic at the initial (empty) configuration.
///
/// Always at least as strong as [`crate::trivial::lower`]; returns
/// `None` when the DAG has more than 64 nodes (bitmask representation)
/// — not when the instance is merely infeasible, which the trivial
/// bounds handle separately.
#[must_use]
pub fn mpp_initial_lower(instance: &MppInstance) -> Option<u64> {
    if instance.dag.n() > 64 {
        return None;
    }
    let h = AdmissibleHeuristic::for_mpp(instance);
    // The empty start state is never "dead", so eval yields a bound.
    h.eval(0, 0, 0)
}

/// SPP counterpart of [`mpp_initial_lower`], honoring the instance's
/// variant flags (Hong–Kung boundary conventions, one-shot).
#[must_use]
pub fn spp_initial_lower(instance: &SppInstance) -> Option<u64> {
    if instance.dag.n() > 64 {
        return None;
    }
    let h = AdmissibleHeuristic::for_spp(instance);
    let start_blue: u64 = if instance.variant.sources_start_blue {
        instance
            .dag
            .sources()
            .iter()
            .fold(0u64, |m, s| m | (1u64 << s.index()))
    } else {
        0
    };
    h.eval(0, start_blue, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trivial;
    use rbp_core::{solve_mpp, solve_spp, SolveLimits, SppVariant};
    use rbp_dag::generators;

    #[test]
    fn mpp_heuristic_dominates_trivial_lower() {
        for (d, k, r, g) in [
            (generators::binary_in_tree(4), 2, 3, 2),
            (generators::grid(3, 3), 2, 3, 1),
            (generators::diamond(3), 3, 4, 5),
        ] {
            let inst = MppInstance::new(&d, k, r, g);
            let h0 = mpp_initial_lower(&inst).unwrap();
            assert!(
                h0 >= trivial::lower(&inst),
                "{}: h0={h0} < trivial={}",
                d.name(),
                trivial::lower(&inst)
            );
        }
    }

    #[test]
    fn mpp_heuristic_never_exceeds_opt() {
        for (d, k, r, g) in [
            (generators::binary_in_tree(4), 2, 3, 2),
            (generators::chain(5), 2, 2, 3),
            (generators::diamond(2), 2, 3, 1),
        ] {
            let inst = MppInstance::new(&d, k, r, g);
            let h0 = mpp_initial_lower(&inst).unwrap();
            let opt = solve_mpp(&inst, SolveLimits::default()).unwrap().total;
            assert!(h0 <= opt, "{}: h0={h0} > OPT={opt}", d.name());
        }
    }

    #[test]
    fn spp_heuristic_sound_on_hong_kung() {
        let d = generators::binary_in_tree(4);
        let inst = SppInstance {
            dag: &d,
            r: 3,
            model: rbp_core::CostModel::spp_io_only(1),
            variant: SppVariant::hong_kung(),
        };
        let h0 = spp_initial_lower(&inst).unwrap();
        let opt = solve_spp(&inst, SolveLimits::default()).unwrap().total;
        // Hong–Kung: all 8 leaves must be loaded, the root stored.
        assert!(h0 >= 1);
        assert!(h0 <= opt);
    }

    #[test]
    fn oversized_dag_is_rejected() {
        let d = generators::chain(70);
        let inst = MppInstance::new(&d, 2, 2, 1);
        assert_eq!(mpp_initial_lower(&inst), None);
    }
}
