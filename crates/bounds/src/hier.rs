//! Lemma 1 generalized to the three-level game.
//!
//! The green tier only ever *adds* options, so the two-level bounds
//! bracket the three-level optimum from both sides:
//!
//! - the compute-count lower bound `ceil(n/k)·compute` is oblivious to
//!   where values are parked and survives unchanged;
//! - the blue-only baseline is still a valid three-level strategy, so
//!   the Lemma 1 upper bound `(g(Δ_in+1)+compute)·n` still holds;
//! - when the green tier is large enough to hold every intermediate
//!   value (`green_cap ≥ n`), the same baseline rides the mid tier
//!   instead and the upper bound tightens to
//!   `(green·(Δ_in+1)+compute)·n`.
//!
//! Feasibility is unchanged (`r ≥ Δ_in + 1`): a green pebble cannot
//! feed a compute directly, so fast memory still has to stage the full
//! input set of every node.

use rbp_core::rbp_dag::Dag;
use rbp_hier::HierInstance;

/// The compute-count lower bound: `OPT ≥ ceil(n/k)·compute`. Each
/// compute step finishes at most `k` nodes; I/O on either outer tier
/// never finishes a node.
#[must_use]
pub fn lower(instance: &HierInstance) -> u64 {
    crate::traced(
        "hier.lower",
        (instance.dag.n() as u64).div_ceil(instance.k as u64) * instance.model.compute,
    )
}

/// The blue-only Lemma 1 upper bound `(g(Δ_in+1)+compute)·n`: the
/// two-level baseline is a valid three-level strategy that never
/// touches green.
#[must_use]
pub fn upper(instance: &HierInstance) -> u64 {
    let d_in = instance.dag.max_in_degree() as u64;
    crate::traced(
        "hier.upper",
        (instance.model.g * (d_in + 1) + instance.model.compute) * instance.dag.n() as u64,
    )
}

/// The green-resident upper bound `(green·(Δ_in+1)+compute)·n`, valid
/// when every value fits the mid tier at once (`green_cap ≥ n`) — the
/// per-node baseline then replaces every blue transfer with a green
/// one. Returns `None` when the capacity condition fails (the bound
/// would require an eviction argument that Lemma 1 does not make).
#[must_use]
pub fn green_upper(instance: &HierInstance) -> Option<u64> {
    if instance.green_cap < instance.dag.n() {
        return None;
    }
    let d_in = instance.dag.max_in_degree() as u64;
    Some(crate::traced(
        "hier.green_upper",
        (instance.model.green * (d_in + 1) + instance.model.compute) * instance.dag.n() as u64,
    ))
}

/// The tightest closed-form upper bound available for the instance.
#[must_use]
pub fn best_upper(instance: &HierInstance) -> u64 {
    let blue = upper(instance);
    green_upper(instance).map_or(blue, |g| g.min(blue))
}

/// Whether a valid three-level pebbling exists: `r ≥ Δ_in + 1`, exactly
/// the two-level threshold.
#[must_use]
pub fn feasible(dag: &Dag, r: usize) -> bool {
    r > dag.max_in_degree()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbp_core::rbp_dag::generators;
    use rbp_core::SolveLimits;
    use rbp_hier::{solve_hier, GreenList, HierScheduler};

    #[test]
    fn bounds_bracket_the_exact_optimum() {
        for (dag, k, r, g, cap, green) in [
            (generators::chain(6), 1, 2, 2, 2, 1),
            (generators::chain(6), 2, 2, 2, 0, 1),
            (generators::binary_in_tree(4), 2, 3, 3, 7, 1),
            (generators::independent_chains(2, 3), 2, 2, 4, 2, 2),
        ] {
            let inst = HierInstance::new(&dag, k, r, g, cap, green);
            let opt = solve_hier(&inst, SolveLimits::states(2_000_000))
                .unwrap_or_else(|| panic!("exact failed on {}", dag.name()));
            assert!(lower(&inst) <= opt.total, "{}", dag.name());
            assert!(opt.total <= best_upper(&inst), "{}", dag.name());
        }
    }

    #[test]
    fn green_upper_requires_full_capacity() {
        let dag = generators::binary_in_tree(4); // n = 7
        let roomy = HierInstance::new(&dag, 2, 3, 5, 7, 1);
        let tight = HierInstance::new(&dag, 2, 3, 5, 6, 1);
        assert_eq!(green_upper(&roomy), Some((3 + 1) * 7));
        assert_eq!(green_upper(&tight), None);
        assert!(best_upper(&roomy) < upper(&roomy));
        assert_eq!(best_upper(&tight), upper(&tight));
    }

    #[test]
    fn scheduler_respects_best_upper() {
        for (dag, k, r, g, cap) in [
            (generators::grid(3, 3), 2, 4, 4, 9),
            (generators::binary_in_tree(8), 2, 3, 3, 15),
            (generators::layered_random(4, 4, 2, 7), 3, 4, 5, 16),
        ] {
            let inst = HierInstance::new(&dag, k, r, g, cap, 1);
            let run = GreenList.schedule(&inst).unwrap();
            assert!(
                run.cost.total(inst.model) <= best_upper(&inst),
                "{}: {} > {}",
                dag.name(),
                run.cost.total(inst.model),
                best_upper(&inst)
            );
        }
    }

    #[test]
    fn feasibility_matches_two_level_threshold() {
        let dag = generators::diamond(4);
        assert!(!feasible(&dag, 4));
        assert!(feasible(&dag, 5));
    }

    #[test]
    fn separation_gadget_sits_between_the_bounds() {
        let gadget = rbp_gadgets::HierSkip::build(1);
        let inst = HierInstance::new(&gadget.dag, 1, 3, 3, 1, 1);
        let opt = solve_hier(&inst, SolveLimits::states(2_000_000)).unwrap();
        assert_eq!(opt.total, gadget.hier_total(1));
        assert!(lower(&inst) <= opt.total && opt.total <= best_upper(&inst));
    }
}
