#!/usr/bin/env bash
# Local CI gate: formatting, lints, build, tests.
#
# The container is fully offline (no crates.io access); the workspace has
# no external dependencies, so everything runs with --offline.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (-D warnings) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --offline --release --workspace --all-targets

echo "== cargo test =="
cargo test --offline --release -q

echo "== cargo doc (missing docs are errors) =="
RUSTDOCFLAGS="-D warnings" cargo doc --offline --no-deps --workspace --quiet

echo "== rustdoc gate on rbp-serve (store/wire modules hold deny(missing_docs)) =="
RUSTDOCFLAGS="-D warnings" cargo doc --offline --no-deps -p rbp-serve --quiet

echo "== rustdoc gate on rbp-stream (crate-wide deny(missing_docs)) =="
RUSTDOCFLAGS="-D warnings" cargo doc --offline --no-deps -p rbp-stream --quiet

echo "== rustdoc gate on rbp-hier (crate-wide deny(missing_docs)) =="
RUSTDOCFLAGS="-D warnings" cargo doc --offline --no-deps -p rbp-hier --quiet

echo "== quick solver sweep (equivalence + speedup smoke) =="
./target/release/exp_solver --quick

echo "== parallel solver smoke (--threads 4, every partition mode, same optimum) =="
seq_opt=$(./target/release/rbp solve tests/fixtures/chains_2x4.dag 2 3 2 \
    | sed -n 's/^OPT = \([0-9]*\).*/\1/p')
[ -n "$seq_opt" ] || { echo "parallel smoke failed: no sequential OPT"; exit 1; }
for mode in hash bands anchors; do
    par_opt=$(./target/release/rbp solve tests/fixtures/chains_2x4.dag 2 3 2 \
        --threads 4 --partition "$mode" \
        | sed -n 's/^OPT = \([0-9]*\).*/\1/p')
    [ "$seq_opt" = "$par_opt" ] \
        || { echo "parallel smoke failed: sequential=$seq_opt threads4/$mode=$par_opt"; exit 1; }
done
echo "parallel smoke: OPT=$seq_opt at 1 thread and 4 threads x {hash,bands,anchors}"

echo "== hier smoke (three-level solve on the separation gadget) =="
hier_dag=$(mktemp)
trap 'rm -f "$hier_dag"' EXIT
./target/release/rbp gen hier_skip 1 > "$hier_dag"
vanilla_opt=$(./target/release/rbp solve "$hier_dag" 1 3 3 \
    | sed -n 's/^OPT = \([0-9]*\).*/\1/p')
hier_opt=$(./target/release/rbp solve "$hier_dag" 1 3 3 --levels 3 --green-cap 1 --green-cost 1 \
    | sed -n 's/^OPT = \([0-9]*\).*/\1/p')
[ -n "$vanilla_opt" ] && [ -n "$hier_opt" ] \
    || { echo "hier smoke failed: vanilla=$vanilla_opt hier=$hier_opt"; exit 1; }
[ "$hier_opt" -lt "$vanilla_opt" ] \
    || { echo "hier smoke failed: hier=$hier_opt not < vanilla=$vanilla_opt"; exit 1; }
# Degenerate reduction: green_cap=0 must reproduce the vanilla optimum.
degen_opt=$(./target/release/rbp solve "$hier_dag" 1 3 3 --levels 3 --green-cap 0 \
    | sed -n 's/^OPT = \([0-9]*\).*/\1/p')
[ "$degen_opt" = "$vanilla_opt" ] \
    || { echo "hier smoke failed: cap=0 gave $degen_opt, vanilla $vanilla_opt"; exit 1; }
trap - EXIT
rm -f "$hier_dag"
echo "hier smoke: OPT(3-level)=$hier_opt < OPT(2-level)=$vanilla_opt, cap=0 reduces exactly"

echo "== hot-path perf guard (state-count ceiling on a fixed fixture) =="
# Load-independent regression gate for the sequential hot path: the
# settled-state count on this fixture is deterministic, so a ceiling —
# not a wall-clock — catches pruning regressions even on a busy CI
# host. Measured counts on grid_3x3 (k=2, r=3, g=2), OPT = 11, with
# the incumbent-probe + branch-and-bound engine:
#   dominance+heuristic (default) : 27,375 settled
#   dominance off                 : 31,947
#   heuristic off (no probe)      : 80,303
#   both off                      : 187,589
# The 30,000 ceiling passes the default config with ~9% headroom and
# fails if the probe, the heuristic, or dominance stops pruning.
guard_trace=$(mktemp)
trap 'rm -f "$guard_trace"' EXIT
guard_opt=$(RBP_TRACE="$guard_trace" \
    ./target/release/rbp solve tests/fixtures/grid_3x3.dag 2 3 2 --max-states 30000 \
    | sed -n 's/^OPT = \([0-9]*\).*/\1/p') \
    || { echo "perf guard failed: settled-state count exceeded 30000 (hot-path regression)"; exit 1; }
[ "$guard_opt" = "11" ] \
    || { echo "perf guard failed: OPT=$guard_opt on grid_3x3, expected 11"; exit 1; }
# The same run must emit phase counters and render them as a report
# section, so the profiling layer cannot silently rot.
guard_report=$(./target/release/rbp report "$guard_trace")
echo "$guard_report" | grep -q "## Hot path" \
    || { echo "perf guard failed: no Hot path section in report"; exit 1; }
echo "$guard_report" | grep -q "solver.phase.mpp.idle_suppressed" \
    || { echo "perf guard failed: solver.phase.mpp.idle_suppressed counter missing"; exit 1; }
trap - EXIT
rm -f "$guard_trace"
echo "perf guard: OPT=11 within the 30000-state ceiling, Hot path section rendered"

echo "== trace report smoke (fixture round trip) =="
./target/release/rbp report tests/fixtures/trace_small.jsonl | grep -q "| chain(4) | 2 | 2 |"
serve_report=$(./target/release/rbp report tests/fixtures/trace_serve.jsonl)
echo "$serve_report" | grep -q "## Serve store" \
    || { echo "report smoke: no Serve store section"; exit 1; }
echo "$serve_report" | grep -q "| serve.store.hit | 2 |" \
    || { echo "report smoke: store hit counter missing"; exit 1; }

echo "== scale smoke (10^5-node grid through the streaming tier) =="
scale_dag=$(mktemp)
scale_trace=$(mktemp)
scale_out=$(mktemp)
trap 'rm -f "$scale_dag" "$scale_trace" "$scale_out"' EXIT
./target/release/rbp gen grid 250 400 > "$scale_dag"
grep -q '^nodes 100000$' "$scale_dag" || { echo "scale smoke: bad generator output"; exit 1; }
# Small memory budget (r=4) on 8 processors; every move goes through
# the rule-enforcing streaming simulator, so a non-zero exit here
# means an *invalid* schedule, not just a slow one.
RBP_TRACE="$scale_trace" ./target/release/rbp schedule "$scale_dag" 8 4 2 --stream \
    || { echo "scale smoke: streaming schedule failed"; exit 1; }
scale_report=$(./target/release/rbp report "$scale_trace")
echo "$scale_report" | grep -q "## Scale" \
    || { echo "scale smoke: no Scale section in report"; exit 1; }
echo "$scale_report" | grep -q "| stream.nodes | 300000 |" \
    || { echo "scale smoke: stream.nodes counter wrong (want 3 schedulers x 100000)"; exit 1; }
echo "$scale_report" | grep -q "stream.nodes_per_sec" \
    || { echo "scale smoke: stream.nodes_per_sec gauge missing"; exit 1; }
echo "$scale_report" | grep -q "stream.peak_active_set" \
    || { echo "scale smoke: stream.peak_active_set gauge missing"; exit 1; }
# Streamed strategy round-trip: emit JSONL, reload it through
# `rbp improve --in` (validates the full strategy in-memory).
./target/release/rbp schedule "$scale_dag" 8 4 2 wavefront --stream --out "$scale_out" \
    || { echo "scale smoke: --out emission failed"; exit 1; }
# Capture, don't pipe: `grep -q` would close the pipe at the first
# match and (under pipefail) turn the CLI's broken-pipe panic into a
# spurious failure.
improve_out=$(./target/release/rbp improve "$scale_dag" 8 4 2 --in "$scale_out" --budget-ms 1) \
    || { echo "scale smoke: improve reload failed"; exit 1; }
echo "$improve_out" | grep -q "saved:" \
    || { echo "scale smoke: streamed JSONL did not reload"; exit 1; }
trap - EXIT
rm -f "$scale_dag" "$scale_trace" "$scale_out"
echo "scale smoke: 10^5-node grid scheduled, stream.* gauges rendered, JSONL round-trip"

echo "== portfolio smoke (fixture DAG, tight budget) =="
summary=$(./target/release/rbp portfolio tests/fixtures/chains_2x4.dag 2 3 2 --budget-ms 200 \
    | grep '^PORTFOLIO ')
echo "$summary"
total=$(echo "$summary" | sed -n 's/.* total=\([0-9]*\).*/\1/p')
baseline=$(echo "$summary" | sed -n 's/.* baseline=\([0-9]*\).*/\1/p')
[ -n "$total" ] && [ -n "$baseline" ] && [ "$total" -le "$baseline" ] \
    || { echo "portfolio smoke failed: total=$total baseline=$baseline"; exit 1; }

echo "== serve smoke (cache hit + graceful shutdown) =="
serve_log=$(mktemp)
./target/release/rbp serve --addr 127.0.0.1:0 --workers 2 >"$serve_log" 2>&1 &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null || true; rm -f "$serve_log"' EXIT
addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's/^rbp-serve listening on \(.*\)$/\1/p' "$serve_log")
    [ -n "$addr" ] && break
    sleep 0.1
done
[ -n "$addr" ] || { echo "serve smoke failed: server never bound"; cat "$serve_log"; exit 1; }
solve_body='{"generator":{"family":"grid","params":[2,3]},"k":2,"r":3,"g":2}'
r1=$(curl -sf -X POST "http://$addr/v1/solve" -d "$solve_body")
r2=$(curl -sf -X POST "http://$addr/v1/solve" -d "$solve_body")
echo "$r1" | grep -q '"cache":"miss"' || { echo "serve smoke: first solve not a miss: $r1"; exit 1; }
echo "$r2" | grep -q '"cache":"hit"'  || { echo "serve smoke: second solve not a hit: $r2"; exit 1; }
t1=$(echo "$r1" | sed -n 's/.*"total":\([0-9]*\).*/\1/p')
t2=$(echo "$r2" | sed -n 's/.*"total":\([0-9]*\).*/\1/p')
[ -n "$t1" ] && [ "$t1" = "$t2" ] \
    || { echo "serve smoke: cached total differs: cold=$t1 warm=$t2"; exit 1; }
# Hier mode must live in the cache key: same DAG, levels=3 vs vanilla
# are distinct entries with distinct (strictly better) totals.
hier_body='{"generator":{"family":"hier_skip","params":[1]},"k":1,"r":3,"g":3,"levels":3,"green_cap":1,"green_cost":1}'
flat_body='{"generator":{"family":"hier_skip","params":[1]},"k":1,"r":3,"g":3}'
h1=$(curl -sf -X POST "http://$addr/v1/solve" -d "$hier_body")
h2=$(curl -sf -X POST "http://$addr/v1/solve" -d "$hier_body")
f1=$(curl -sf -X POST "http://$addr/v1/solve" -d "$flat_body")
echo "$h1" | grep -q '"cache":"miss"' || { echo "serve smoke: hier solve not a miss: $h1"; exit 1; }
echo "$h2" | grep -q '"cache":"hit"'  || { echo "serve smoke: hier repeat not a hit: $h2"; exit 1; }
echo "$h1" | grep -q '"mode":"hier:cap=1:cost=1"' \
    || { echo "serve smoke: hier mode token not echoed: $h1"; exit 1; }
echo "$f1" | grep -q '"cache":"miss"' \
    || { echo "serve smoke: vanilla body collided with the hier cache key: $f1"; exit 1; }
ht=$(echo "$h1" | sed -n 's/.*"total":\([0-9]*\).*/\1/p')
ft=$(echo "$f1" | sed -n 's/.*"total":\([0-9]*\).*/\1/p')
[ -n "$ht" ] && [ -n "$ft" ] && [ "$ht" -lt "$ft" ] \
    || { echo "serve smoke: hier total=$ht not < vanilla total=$ft"; exit 1; }
curl -sf -X POST "http://$addr/v1/shutdown" >/dev/null
wait "$serve_pid" || { echo "serve smoke: server exited non-zero"; exit 1; }
trap - EXIT
rm -f "$serve_log"
echo "serve smoke: cache hit (total=$t1), hier keyed separately ($ht < $ft), clean shutdown"

echo "== restart-survival smoke (--store-dir, SIGTERM kill, warm reboot hit) =="
store_dir=$(mktemp -d)
serve_log=$(mktemp)
./target/release/rbp serve --addr 127.0.0.1:0 --workers 2 --store-dir "$store_dir" \
    >"$serve_log" 2>&1 &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null || true; rm -rf "$serve_log" "$store_dir"' EXIT
addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's/^rbp-serve listening on \([^ ]*\).*$/\1/p' "$serve_log")
    [ -n "$addr" ] && break
    sleep 0.1
done
[ -n "$addr" ] || { echo "restart smoke: server never bound"; cat "$serve_log"; exit 1; }
solve_body='{"generator":{"family":"grid","params":[2,3]},"k":2,"r":3,"g":2}'
r1=$(curl -sf -X POST "http://$addr/v1/solve" -d "$solve_body")
echo "$r1" | grep -q '"cache":"miss"' \
    || { echo "restart smoke: first solve not a miss: $r1"; exit 1; }
t1=$(echo "$r1" | sed -n 's/.*"total":\([0-9]*\).*/\1/p')
# Abrupt SIGTERM — no graceful drain. The store's checksummed append
# log must still hold the result (crash-tail recovery covers any torn
# final record).
kill -TERM "$serve_pid"
wait "$serve_pid" || true
./target/release/rbp serve --addr 127.0.0.1:0 --workers 2 --store-dir "$store_dir" \
    >"$serve_log" 2>&1 &
serve_pid=$!
addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's/^rbp-serve listening on \([^ ]*\).*$/\1/p' "$serve_log")
    [ -n "$addr" ] && break
    sleep 0.1
done
[ -n "$addr" ] || { echo "restart smoke: reborn server never bound"; cat "$serve_log"; exit 1; }
r2=$(curl -sf -X POST "http://$addr/v1/solve" -d "$solve_body")
echo "$r2" | grep -q '"cache":"hit"' \
    || { echo "restart smoke: reboot did not answer warm: $r2"; exit 1; }
t2=$(echo "$r2" | sed -n 's/.*"total":\([0-9]*\).*/\1/p')
[ -n "$t1" ] && [ "$t1" = "$t2" ] \
    || { echo "restart smoke: totals differ across restart: $t1 vs $t2"; exit 1; }
curl -sf -X POST "http://$addr/v1/shutdown" >/dev/null
wait "$serve_pid" || { echo "restart smoke: server exited non-zero"; exit 1; }
trap - EXIT
rm -rf "$serve_log" "$store_dir"
echo "restart smoke: SIGTERM survived, warm hit with identical total=$t1"

echo "CI OK"
