#!/usr/bin/env bash
# Local CI gate: formatting, lints, build, tests.
#
# The container is fully offline (no crates.io access); the workspace has
# no external dependencies, so everything runs with --offline.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (-D warnings) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --offline --release --workspace --all-targets

echo "== cargo test =="
cargo test --offline --release -q

echo "== cargo doc (missing docs are errors) =="
RUSTDOCFLAGS="-D warnings" cargo doc --offline --no-deps --workspace --quiet

echo "== quick solver sweep (equivalence + speedup smoke) =="
./target/release/exp_solver --quick

echo "== trace report smoke (fixture round trip) =="
./target/release/rbp report tests/fixtures/trace_small.jsonl | grep -q "| chain(4) | 2 | 2 |"

echo "== portfolio smoke (fixture DAG, tight budget) =="
summary=$(./target/release/rbp portfolio tests/fixtures/chains_2x4.dag 2 3 2 --budget-ms 200 \
    | grep '^PORTFOLIO ')
echo "$summary"
total=$(echo "$summary" | sed -n 's/.* total=\([0-9]*\).*/\1/p')
baseline=$(echo "$summary" | sed -n 's/.* baseline=\([0-9]*\).*/\1/p')
[ -n "$total" ] && [ -n "$baseline" ] && [ "$total" -le "$baseline" ] \
    || { echo "portfolio smoke failed: total=$total baseline=$baseline"; exit 1; }

echo "CI OK"
