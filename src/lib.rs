//! # rbp — Red-Blue Pebbling with Multiple Processors
//!
//! Facade crate re-exporting the whole workspace: the pebbling games
//! ([`core`]), the three-level hierarchy mode ([`hier`]), the DAG
//! substrate ([`dag`]), heuristic schedulers
//! ([`schedulers`]), anytime refinement and the racing solver portfolio
//! ([`refine`]), the paper's proof constructions ([`gadgets`]), lower
//! bounds ([`bounds`]), and the pebbling-as-a-service HTTP layer
//! ([`serve`]).
//!
//! See the repository README for a guided tour and `examples/` for
//! runnable entry points (`cargo run --example quickstart`).

#![warn(missing_docs)]

/// Lower bounds on pebbling costs.
pub use rbp_bounds as bounds;
/// The pebbling games: SPP, MPP, validators, exact solvers.
pub use rbp_core as core;
/// Computational DAGs: storage, generators, analyses.
pub use rbp_dag as dag;
/// Executable proof constructions from the paper.
pub use rbp_gadgets as gadgets;
/// Three-level (red/green/blue) hierarchical pebbling: exact solver,
/// schedulers, projection to the two-level game.
pub use rbp_hier as hier;
/// Anytime local-search refinement and the racing solver portfolio.
pub use rbp_refine as refine;
/// Heuristic schedulers producing valid strategies.
pub use rbp_schedulers as schedulers;
/// Pebbling as a service: HTTP/1.1 + JSON job queue, result cache,
/// worker pool.
pub use rbp_serve as serve;
/// Streaming scheduler tier for million-node DAGs: bounded passes,
/// O(active-set) resident state, incremental strategy emission.
pub use rbp_stream as stream;
/// Structured observability: trace events, sinks, manifests, reports.
pub use rbp_trace as trace;
/// Zero-dependency utilities (hashing, RNG, JSON) used by the tests and
/// experiment harness.
pub use rbp_util as util;
