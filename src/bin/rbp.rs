//! `rbp` — command-line front end.
//!
//! ```text
//! rbp stats     <dag.txt>                      DAG statistics
//! rbp schedule  <dag.txt> <k> <r> <g> [name]   run a scheduler, print cost breakdown
//! rbp solve     <dag.txt> <k> <r> <g> [opts]   exact optimum (small DAGs)
//! rbp improve   <dag.txt> <k> <r> <g> [opts]   anytime local-search refinement
//! rbp portfolio <dag.txt> <k> <r> <g> [opts]   race schedulers + refinement + exact
//! rbp bounds    <dag.txt> <k> <r> <g>          Lemma 1 bounds + feasibility
//! rbp dot       <dag.txt>                      Graphviz DOT to stdout
//! rbp gen       <family> [params…]             emit a generated DAG as text
//! rbp report    <trace.jsonl>                  render a trace file as markdown
//! rbp serve     [opts]                         run the HTTP pebbling service
//! ```
//!
//! `schedule` options: `--stream` (run the `rbp-stream` streaming tier
//! instead of the in-memory registry — bounded CSR passes,
//! O(active-set) resident state, suitable for million-node DAGs),
//! `--out <file>` (with `--stream` and exactly one scheduler selected:
//! stream the strategy to JSONL re-loadable by `rbp improve --in`).
//! `solve` options: `--threads <N>` (default 1; `≥ 2` runs the
//! sharded parallel engine, same proven optimum), `--partition
//! hash|bands|anchors` (shard-ownership strategy for the parallel
//! engine; default `hash`), `--max-states <N>` (settled-state budget),
//! `--deadline-ms <N>` (wall-clock limit; budget and deadline
//! exhaustion are reported distinctly).
//!
//! `solve`, `schedule`, `portfolio`, and `bounds` accept the game-mode
//! flags `--levels <2|3>`, `--green-cap <N>`, and `--green-cost <N>`
//! (parsed by the workspace-wide `rbp_core::GameMode`, same semantics
//! as the serve API): `--levels 3` switches to the three-level
//! red/green/blue hierarchy of the `rbp-hier` crate, with a shared
//! mid tier of capacity `--green-cap` (default 2) whose I/O rule costs
//! `--green-cost` (default 1). Without `--levels 3` the green flags are
//! rejected and the vanilla two-level paths run unchanged.
//! `improve` options: `--budget-ms <N>` (default 1000), `--driver
//! auto|hill|anneal|lns`, `--in <file>` (resume from a saved strategy),
//! `--out <file>` (save the refined strategy as JSONL).
//! `portfolio` options: `--budget-ms <N>` (default 1000),
//! `--no-exact`, `--exact-threads <N>`, `--partition
//! hash|bands|anchors` (for the exact lane). Both honor the
//! workspace-wide `RBP_SEED` environment variable for deterministic
//! reruns.
//!
//! `serve` options: `--addr <host:port>` (default `127.0.0.1:8017`;
//! port `0` picks an ephemeral one, printed on startup), `--workers
//! <N>`, `--queue-cap <N>`, `--cache-cap <N>`, `--deadline-ms <N>`,
//! `--max-solve-threads <N>` (per-request solver-thread cap, default 4),
//! `--store-dir <dir>` (persistent result store: results survive
//! restarts and warm the cache on boot), `--store-cap-bytes <N>`
//! (store log size cap, default 64 MiB; 0 = unbounded). The HTTP API,
//! the on-disk store format, and the binary wire protocol are
//! documented in `docs/SCHEMAS.md` (operations guide:
//! `docs/OPERATIONS.md`); `POST /v1/shutdown` drains and stops the
//! server.
//!
//! DAG files use the `rbp_dag::io` text format (see crate docs).
//!
//! Every subcommand emits a structured trace when the `RBP_TRACE`
//! environment variable names a destination file (`docs/SCHEMAS.md`
//! documents the JSONL schema); `rbp report` renders such a file back
//! into the tables and counters it contains.

use std::process::ExitCode;

use rbp::bounds::trivial;
use rbp::core::rbp_dag::{dot, io, Dag, DagStats};
use rbp::core::{
    async_makespan, batchify, GameMode, MppInstance, MppRun, MppRunStats, PartitionMode,
    SearchConfig, SolveLimits, StopReason,
};
use rbp::hier::{all_hier_schedulers, HierInstance};
use rbp::refine::{persist, Budget, Driver, PortfolioConfig, RefineConfig};
use rbp::schedulers::all_schedulers;
use rbp::util::env_seed;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    init_trace(&args);
    let result = run(&args);
    rbp::trace::uninstall();
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: rbp <stats|schedule|solve|improve|portfolio|bounds|dot|gen|report|serve> …  (see docs in src/bin/rbp.rs)"
            );
            ExitCode::FAILURE
        }
    }
}

/// Installs a JSONL trace sink when `RBP_TRACE` names a destination
/// path (`0`, `off`, or empty disables; the CLI defaults to no trace,
/// unlike the experiment binaries which trace by default).
fn init_trace(args: &[String]) {
    let Ok(path) = std::env::var("RBP_TRACE") else {
        return;
    };
    if path.is_empty() || path == "0" || path.eq_ignore_ascii_case("off") {
        return;
    }
    let Ok(sink) = rbp::trace::JsonlSink::create(std::path::Path::new(&path)) else {
        eprintln!("warning: could not create trace file {path}");
        return;
    };
    let fields: Vec<rbp::trace::Json> = args
        .iter()
        .map(|a| rbp::trace::Json::from(a.as_str()))
        .collect();
    let manifest = rbp::trace::Manifest::new("rbp")
        .field("args", rbp::trace::Json::Arr(fields))
        .field("seed", env_seed(0));
    rbp::trace::install(Box::new(sink), manifest);
}

fn run(args: &[String]) -> Result<(), String> {
    let cmd = args.first().ok_or("missing subcommand")?;
    match cmd.as_str() {
        "stats" => {
            let dag = load(args.get(1))?;
            println!("{}", dag.name());
            println!("{}", DagStats::compute(&dag));
            Ok(())
        }
        "schedule" => {
            let dag = load(args.get(1))?;
            let (k, r, g) = krg(args)?;
            let want = args
                .get(5)
                .filter(|a| !a.starts_with("--"))
                .map(String::as_str);
            let mode = game_mode(args)?;
            if args.iter().any(|a| a == "--stream") {
                if mode.is_hier() {
                    return Err("--stream is two-level only (drop --levels 3)".to_string());
                }
                return schedule_stream(&dag, k, r, g, want, flag_value(args, "--out")?);
            }
            let inst = MppInstance::new(&dag, k, r, g);
            if let Some(hinst) = HierInstance::from_mode(&inst, mode) {
                return schedule_hier(&hinst, want);
            }
            if !inst.is_feasible() {
                return Err(format!("infeasible: need r ≥ {}", dag.max_in_degree() + 1));
            }
            let mut any = false;
            for s in all_schedulers() {
                if let Some(w) = want {
                    if !s.name().contains(w) {
                        continue;
                    }
                }
                any = true;
                let run = s.schedule(&inst).map_err(|e| e.to_string())?;
                let stats = MppRunStats::analyze(&inst, &run.strategy);
                let asy = async_makespan(&inst, &run.strategy).makespan;
                let batched = batchify(&inst, &run.strategy)
                    .validate(&inst)
                    .map_err(|e| e.to_string())?
                    .total(inst.model);
                println!(
                    "{:<50} total={:<6} io_steps={:<5} surplus={:<6} comm={:<5} spill={:<5} recompute={:<4} async={:<6} batchified={}",
                    s.name(),
                    stats.total,
                    stats.cost.io_steps(),
                    stats.surplus,
                    stats.communication_transfers(),
                    stats.spill_transfers(),
                    stats.recomputations,
                    asy,
                    batched,
                );
            }
            if !any {
                return Err(format!("no scheduler matches '{}'", want.unwrap_or("")));
            }
            Ok(())
        }
        "solve" => {
            let dag = load(args.get(1))?;
            let (k, r, g) = krg(args)?;
            let inst = MppInstance::new(&dag, k, r, g);
            let threads = flag_value(args, "--threads")?.map_or(Ok(1), |v| {
                v.parse::<usize>().map_err(|_| "bad --threads".to_string())
            })?;
            let mut limits =
                flag_value(args, "--max-states")?.map_or(Ok(SolveLimits::default()), |v| {
                    v.parse::<usize>()
                        .map(SolveLimits::states)
                        .map_err(|_| "bad --max-states".to_string())
                })?;
            if let Some(ms) = flag_value(args, "--deadline-ms")? {
                let ms: u64 = ms.parse().map_err(|_| "bad --deadline-ms".to_string())?;
                limits = limits.with_deadline(std::time::Duration::from_millis(ms));
            }
            let partition = flag_value(args, "--partition")?
                .map_or(Ok(PartitionMode::default()), str::parse)?;
            let config = SearchConfig::default()
                .with_limits(limits)
                .with_threads(threads)
                .with_partition(partition);
            let mode = game_mode(args)?;
            if let Some(hinst) = HierInstance::from_mode(&inst, mode) {
                let out = rbp::hier::solve_hier_with(&hinst, &config);
                let sol = out
                    .solution
                    .ok_or_else(|| solve_failure(&out.reason, &config))?;
                println!(
                    "OPT = {} ({}; mode={}; {} moves; {} settled, {} thread{})",
                    sol.total,
                    sol.cost,
                    mode.token(),
                    sol.strategy.len(),
                    out.stats.settled,
                    out.stats.threads,
                    if out.stats.threads == 1 { "" } else { "s" }
                );
                for mv in &sol.strategy.moves {
                    println!("  {mv}");
                }
                return Ok(());
            }
            let out = rbp::core::solve_mpp_with(&inst, &config);
            let sol = out
                .solution
                .ok_or_else(|| solve_failure(&out.reason, &config))?;
            println!(
                "OPT = {} ({}; {} moves; {} settled, {} thread{})",
                sol.total,
                sol.cost,
                sol.strategy.len(),
                out.stats.settled,
                out.stats.threads,
                if out.stats.threads == 1 { "" } else { "s" }
            );
            for mv in &sol.strategy.moves {
                println!("  {mv}");
            }
            Ok(())
        }
        "improve" => {
            let dag = load(args.get(1))?;
            let (k, r, g) = krg(args)?;
            let inst = MppInstance::new(&dag, k, r, g);
            if !inst.is_feasible() {
                return Err(format!("infeasible: need r ≥ {}", dag.max_in_degree() + 1));
            }
            let budget = flag_value(args, "--budget-ms")?.map_or(Ok(1000), |v| {
                v.parse::<u64>().map_err(|_| "bad --budget-ms".to_string())
            })?;
            let driver = match flag_value(args, "--driver")?.unwrap_or("auto") {
                "auto" => Driver::Auto,
                "hill" => Driver::HillClimb,
                "anneal" => Driver::Anneal,
                "lns" => Driver::Lns,
                other => return Err(format!("unknown driver '{other}' (auto|hill|anneal|lns)")),
            };

            // Initial strategy: a saved file, or the best scheduler result.
            let (initial, origin) = match flag_value(args, "--in")? {
                Some(path) => {
                    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
                    let saved =
                        persist::strategy_from_jsonl(&text).map_err(|e| format!("{path}: {e}"))?;
                    if (saved.n, saved.k, saved.r, saved.g) != (dag.n(), k, r, g) {
                        return Err(format!(
                            "{path}: saved for n={} k={} r={} g={}, want n={} k={} r={} g={}",
                            saved.n,
                            saved.k,
                            saved.r,
                            saved.g,
                            dag.n(),
                            k,
                            r,
                            g
                        ));
                    }
                    (saved.strategy, format!("saved:{path}"))
                }
                None => {
                    let mut best: Option<(u64, MppRun, String)> = None;
                    for s in all_schedulers() {
                        let run = s.schedule(&inst).map_err(|e| e.to_string())?;
                        let merged = batchify(&inst, &run.strategy);
                        let cost = merged.validate(&inst).map_err(|e| e.to_string())?;
                        let total = cost.total(inst.model);
                        if best.as_ref().is_none_or(|(t, _, _)| total < *t) {
                            best = Some((
                                total,
                                MppRun {
                                    strategy: merged,
                                    cost,
                                },
                                s.name(),
                            ));
                        }
                    }
                    let (_, run, name) = best.expect("scheduler registry is never empty");
                    (run.strategy, name)
                }
            };

            let cfg = RefineConfig {
                seed: env_seed(0),
                budget: Budget::millis(budget),
                driver,
            };
            let out = rbp::refine::refine(&inst, &initial, &cfg).map_err(|e| e.to_string())?;
            println!("initial  total={:<6} ({origin})", out.initial_total);
            println!(
                "refined  total={:<6} ({}; {} proposals, {} accepted)",
                out.total, out.provenance, out.proposals, out.accepted
            );
            if let Some(path) = flag_value(args, "--out")? {
                let saved = persist::SavedStrategy {
                    dag_name: dag.name().to_string(),
                    n: dag.n(),
                    k,
                    r,
                    g,
                    strategy: out.run.strategy.clone(),
                };
                std::fs::write(path, persist::strategy_to_jsonl(&saved))
                    .map_err(|e| format!("{path}: {e}"))?;
                println!("saved    {path}");
            }
            Ok(())
        }
        "portfolio" => {
            let dag = load(args.get(1))?;
            let (k, r, g) = krg(args)?;
            let inst = MppInstance::new(&dag, k, r, g);
            if !inst.is_feasible() {
                return Err(format!("infeasible: need r ≥ {}", dag.max_in_degree() + 1));
            }
            let budget = flag_value(args, "--budget-ms")?.map_or(Ok(1000), |v| {
                v.parse::<u64>().map_err(|_| "bad --budget-ms".to_string())
            })?;
            let exact_threads = flag_value(args, "--exact-threads")?.map_or(Ok(1), |v| {
                v.parse::<usize>()
                    .map_err(|_| "bad --exact-threads".to_string())
            })?;
            let exact_partition = flag_value(args, "--partition")?
                .map_or(Ok(PartitionMode::default()), str::parse)?;
            let cfg = PortfolioConfig {
                budget_millis: budget,
                seed: env_seed(0),
                use_exact: !args.iter().any(|a| a == "--no-exact"),
                exact_threads: exact_threads.max(1),
                exact_partition,
                mode: game_mode(args)?,
                ..PortfolioConfig::default()
            };
            let out = rbp::refine::race(&inst, &cfg).map_err(|e| e.to_string())?;
            for e in &out.entries {
                match e.total {
                    Some(t) => println!("{:<24} total={:<6} {:>6} ms", e.name, t, e.millis),
                    None => println!("{:<24} total=-      {:>6} ms", e.name, e.millis),
                }
            }
            let baseline = out
                .entries
                .first()
                .and_then(|e| e.total)
                .expect("baseline scheduler always reports a cost");
            // Machine-parseable summary line (consumed by scripts/ci.sh).
            println!(
                "PORTFOLIO winner={} total={} baseline={} optimal={}",
                out.provenance, out.total, baseline, out.proven_optimal
            );
            Ok(())
        }
        "bounds" => {
            let dag = load(args.get(1))?;
            let (k, r, g) = krg(args)?;
            let inst = MppInstance::new(&dag, k, r, g);
            let mode = game_mode(args)?;
            if let Some(hinst) = HierInstance::from_mode(&inst, mode) {
                use rbp::bounds::hier;
                println!("mode: {}", mode.token());
                println!("feasible (r ≥ Δin+1): {}", hier::feasible(&dag, r));
                println!("hier lower:      {}", hier::lower(&hinst));
                println!("hier upper:      {}", hier::upper(&hinst));
                match hier::green_upper(&hinst) {
                    Some(b) => println!("green upper:     {b}"),
                    None => println!("green upper:     - (green-cap < n)"),
                }
                println!("best upper:      {}", hier::best_upper(&hinst));
                return Ok(());
            }
            println!("feasible (r ≥ Δin+1): {}", inst.is_feasible());
            println!("Lemma 1 lower:  {}", trivial::lower(&inst));
            println!("Lemma 1 upper:  {}", trivial::upper(&inst));
            println!("greedy factor:  {}", trivial::greedy_factor(&inst));
            Ok(())
        }
        "dot" => {
            let dag = load(args.get(1))?;
            print!("{}", dot::to_dot(&dag, &dot::DotOptions::default()));
            Ok(())
        }
        "report" => {
            let path = args.get(1).ok_or("report: missing trace file")?;
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            let rendered = rbp::trace::report::render(&text)?;
            print!("{rendered}");
            Ok(())
        }
        "gen" => {
            let family = args.get(1).ok_or("gen: missing family")?;
            let nums: Vec<usize> = args[2..]
                .iter()
                .map(|s| s.parse().map_err(|_| format!("bad number '{s}'")))
                .collect::<Result<_, _>>()?;
            let dag = rbp::serve::build_dag(family, &nums)?;
            print!("{}", io::to_text(&dag));
            Ok(())
        }
        "serve" => {
            let parse_flag = |flag: &str, default: usize| -> Result<usize, String> {
                flag_value(args, flag)?.map_or(Ok(default), |v| {
                    v.parse::<usize>().map_err(|_| format!("bad {flag}"))
                })
            };
            let defaults = rbp::serve::ServeConfig::default();
            let cfg = rbp::serve::ServeConfig {
                addr: flag_value(args, "--addr")?
                    .unwrap_or("127.0.0.1:8017")
                    .to_string(),
                workers: parse_flag("--workers", defaults.workers)?,
                queue_cap: parse_flag("--queue-cap", defaults.queue_cap)?,
                cache_cap: parse_flag("--cache-cap", defaults.cache_cap)?,
                default_deadline_ms: parse_flag(
                    "--deadline-ms",
                    defaults.default_deadline_ms as usize,
                )? as u64,
                max_body_bytes: defaults.max_body_bytes,
                max_solve_threads: parse_flag("--max-solve-threads", defaults.max_solve_threads)?,
                store_dir: flag_value(args, "--store-dir")?.map(str::to_string),
                store_cap_bytes: parse_flag("--store-cap-bytes", defaults.store_cap_bytes as usize)?
                    as u64,
            };
            let store_note = cfg
                .store_dir
                .as_ref()
                .map(|d| format!(" (store: {d})"))
                .unwrap_or_default();
            let server = rbp::serve::Server::start(cfg).map_err(|e| format!("serve: {e}"))?;
            println!("rbp-serve listening on {}{store_note}", server.addr());
            server.wait();
            println!("rbp-serve drained, exiting");
            Ok(())
        }
        other => Err(format!("unknown subcommand '{other}'")),
    }
}

/// `rbp schedule … --stream`: run the streaming scheduler tier. Every
/// move passes through the rule-enforcing [`rbp::stream::StreamSim`];
/// without `--out` strategies are discarded as they are verified
/// (`O(active-set)` resident state), with `--out <file>` the selected
/// scheduler's strategy streams to JSONL re-loadable by
/// `rbp improve --in`.
fn schedule_stream(
    dag: &Dag,
    k: usize,
    r: usize,
    g: u64,
    want: Option<&str>,
    out: Option<&str>,
) -> Result<(), String> {
    use rbp::stream::{all_stream_schedulers, JsonlSink, NullSink, StreamHeader};
    let model = rbp::core::CostModel::mpp(g);
    let selected: Vec<_> = all_stream_schedulers()
        .into_iter()
        .filter(|s| want.is_none_or(|w| s.name().contains(w)))
        .collect();
    if selected.is_empty() {
        return Err(format!(
            "no streaming scheduler matches '{}'",
            want.unwrap_or("")
        ));
    }
    if out.is_some() && selected.len() > 1 {
        return Err(format!(
            "--out needs exactly one scheduler; name one of: {}",
            selected
                .iter()
                .map(|s| s.name())
                .collect::<Vec<_>>()
                .join(", ")
        ));
    }
    for s in selected {
        let run = if let Some(path) = out {
            let file = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
            let header = StreamHeader {
                dag_name: dag.name().to_string(),
                n: dag.n(),
                k,
                r,
                g,
            };
            let mut sink = JsonlSink::new(file, &header).map_err(|e| format!("{path}: {e}"))?;
            let run = s
                .schedule(dag, k, r, &mut sink)
                .map_err(|e| format!("{}: {e}", s.name()))?;
            sink.into_inner()
                .and_then(|f| f.sync_all())
                .map_err(|e| format!("{path}: {e}"))?;
            println!("saved {path} ({} bytes)", run.bytes_emitted);
            run
        } else {
            let mut sink = NullSink::new();
            s.schedule(dag, k, r, &mut sink)
                .map_err(|e| format!("{}: {e}", s.name()))?
        };
        rbp::stream::trace_stream_run(&s.name(), &run);
        println!(
            "{:<24} total={:<8} io_steps={:<7} moves={:<8} passes={:<2} peak_active={:<6} nodes/s={:.0}",
            s.name(),
            run.cost.total(model),
            run.cost.io_steps(),
            run.moves,
            run.passes,
            run.peak_active_set,
            run.nodes_per_sec(),
        );
    }
    Ok(())
}

/// `rbp schedule … --levels 3`: run the three-level schedulers and
/// print a cost breakdown with blue and green traffic attributed
/// separately.
fn schedule_hier(inst: &HierInstance, want: Option<&str>) -> Result<(), String> {
    if !inst.is_feasible() {
        return Err(format!(
            "infeasible: need r ≥ {}",
            inst.dag.max_in_degree() + 1
        ));
    }
    let mut any = false;
    for s in all_hier_schedulers() {
        if let Some(w) = want {
            if !s.name().contains(w) {
                continue;
            }
        }
        any = true;
        let run = s.schedule(inst).map_err(|e| e.to_string())?;
        println!(
            "{:<50} total={:<6} io_steps={:<5} green_io={:<5} green_stores={:<5} green_loads={:<5} computes={}",
            s.name(),
            run.cost.total(inst.model),
            run.cost.io_steps(),
            run.cost.green_io_steps(),
            run.cost.green_stores,
            run.cost.green_loads,
            run.cost.computes,
        );
    }
    if !any {
        return Err(format!("no scheduler matches '{}'", want.unwrap_or("")));
    }
    Ok(())
}

/// Parses the shared game-mode flags (`--levels`, `--green-cap`,
/// `--green-cost`) through the workspace-wide [`GameMode`] parser.
fn game_mode(args: &[String]) -> Result<GameMode, String> {
    let num = |flag: &str| -> Result<Option<u64>, String> {
        flag_value(args, flag)?
            .map(|v| v.parse::<u64>().map_err(|_| format!("bad {flag}")))
            .transpose()
    };
    GameMode::from_flags(num("--levels")?, num("--green-cap")?, num("--green-cost")?)
}

/// Renders a failed exact solve into the CLI error message.
fn solve_failure(reason: &StopReason, config: &SearchConfig) -> String {
    match reason {
        StopReason::StateLimit => format!(
            "exact solve hit its state budget of {} settled states \
             (raise --max-states)",
            config.limits.max_states
        ),
        StopReason::Deadline => "exact solve hit its --deadline-ms wall-clock budget".to_string(),
        StopReason::Unsupported => {
            "exact solve failed (instance too large or infeasible)".to_string()
        }
        other => format!("exact solve failed ({})", other.as_str()),
    }
}

/// Looks up `--flag value` in the argument list; errors when the flag is
/// present but its value is missing.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Result<Option<&'a str>, String> {
    match args.iter().position(|a| a == flag) {
        Some(i) => args
            .get(i + 1)
            .map(|v| Some(v.as_str()))
            .ok_or(format!("{flag}: missing value")),
        None => Ok(None),
    }
}

fn load(path: Option<&String>) -> Result<Dag, String> {
    let path = path.ok_or("missing DAG file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    io::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn krg(args: &[String]) -> Result<(usize, usize, u64), String> {
    let p = |i: usize, name: &str| -> Result<u64, String> {
        args.get(i)
            .ok_or(format!("missing {name}"))?
            .parse()
            .map_err(|_| format!("bad {name}"))
    };
    Ok((p(2, "k")? as usize, p(3, "r")? as usize, p(4, "g")?))
}
